//! Independent validators for the outputs of the distributed protocols.
//!
//! Correctness in the paper's sense (Section 2) demands that *every* output
//! configuration reached with positive probability is a valid solution.
//! Experiments therefore never trust a protocol's own bookkeeping: every
//! terminal configuration is re-checked by the plain sequential predicates
//! in this module.

use crate::dynamic::TopologyError;
use crate::{Graph, NodeId};

fn check_len<T>(g: &Graph, what: &'static str, xs: &[T]) -> Result<(), TopologyError> {
    if xs.len() == g.node_count() {
        Ok(())
    } else {
        Err(TopologyError::LengthMismatch {
            what,
            expected: g.node_count(),
            actual: xs.len(),
        })
    }
}

/// Whether `in_set` (indexed by node) is an independent set: no edge has
/// both endpoints selected.
///
/// # Panics
/// Panics when `in_set` is not node-count sized; untrusted input goes
/// through [`try_is_independent_set`].
pub fn is_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    try_is_independent_set(g, in_set).unwrap_or_else(|e| panic!("{e}"))
}

/// [`is_independent_set`] with malformed input reported as a typed
/// [`TopologyError`] instead of a panic.
pub fn try_is_independent_set(g: &Graph, in_set: &[bool]) -> Result<bool, TopologyError> {
    check_len(g, "in_set", in_set)?;
    Ok(g.edges()
        .all(|(u, v)| !(in_set[u as usize] && in_set[v as usize])))
}

/// Whether `in_set` is a *maximal* independent set: independent, and every
/// unselected node has a selected neighbor (no node can be added).
///
/// # Panics
/// Panics when `in_set` is not node-count sized; untrusted input goes
/// through [`try_is_maximal_independent_set`].
pub fn is_maximal_independent_set(g: &Graph, in_set: &[bool]) -> bool {
    try_is_maximal_independent_set(g, in_set).unwrap_or_else(|e| panic!("{e}"))
}

/// [`is_maximal_independent_set`] with malformed input reported as a
/// typed [`TopologyError`] instead of a panic.
pub fn try_is_maximal_independent_set(g: &Graph, in_set: &[bool]) -> Result<bool, TopologyError> {
    if !try_is_independent_set(g, in_set)? {
        return Ok(false);
    }
    Ok(g.nodes()
        .all(|v| in_set[v as usize] || g.neighbors(v).iter().any(|&u| in_set[u as usize])))
}

/// Whether `colors` (indexed by node) is a proper coloring: adjacent nodes
/// differ.
///
/// # Panics
/// Panics when `colors` is not node-count sized; untrusted input goes
/// through [`try_is_proper_coloring`].
pub fn is_proper_coloring(g: &Graph, colors: &[u32]) -> bool {
    try_is_proper_coloring(g, colors).unwrap_or_else(|e| panic!("{e}"))
}

/// [`is_proper_coloring`] with malformed input reported as a typed
/// [`TopologyError`] instead of a panic.
pub fn try_is_proper_coloring(g: &Graph, colors: &[u32]) -> Result<bool, TopologyError> {
    check_len(g, "colors", colors)?;
    Ok(g.edges()
        .all(|(u, v)| colors[u as usize] != colors[v as usize]))
}

/// Whether `colors` is a proper coloring using at most `k` distinct values
/// drawn from `0..k`.
///
/// # Panics
/// Panics when `colors` is not node-count sized; untrusted input goes
/// through [`try_is_proper_k_coloring`].
pub fn is_proper_k_coloring(g: &Graph, colors: &[u32], k: u32) -> bool {
    try_is_proper_k_coloring(g, colors, k).unwrap_or_else(|e| panic!("{e}"))
}

/// [`is_proper_k_coloring`] with malformed input reported as a typed
/// [`TopologyError`] instead of a panic.
pub fn try_is_proper_k_coloring(g: &Graph, colors: &[u32], k: u32) -> Result<bool, TopologyError> {
    Ok(colors.iter().all(|&c| c < k) && try_is_proper_coloring(g, colors)?)
}

/// Whether `matched` is a matching: a set of edges no two of which share an
/// endpoint. Edges are given as pairs; orientation is ignored.
pub fn is_matching(g: &Graph, matched: &[(NodeId, NodeId)]) -> bool {
    let mut used = vec![false; g.node_count()];
    for &(u, v) in matched {
        if u == v || !g.has_edge(u, v) {
            return false;
        }
        if used[u as usize] || used[v as usize] {
            return false;
        }
        used[u as usize] = true;
        used[v as usize] = true;
    }
    true
}

/// Whether `matched` is a *maximal* matching: a matching such that every
/// edge of `g` has at least one matched endpoint.
pub fn is_maximal_matching(g: &Graph, matched: &[(NodeId, NodeId)]) -> bool {
    if !is_matching(g, matched) {
        return false;
    }
    let mut used = vec![false; g.node_count()];
    for &(u, v) in matched {
        used[u as usize] = true;
        used[v as usize] = true;
    }
    g.edges().all(|(u, v)| used[u as usize] || used[v as usize])
}

/// The number of nodes that are *good* in the sense of the paper's
/// Section 5: a node of a tree (or forest) is good if it is isolated, a
/// leaf, or has degree 2 with both neighbors of degree at most 2.
///
/// Observation 5.2 asserts at least a 1/5 fraction of tree nodes are good;
/// experiment E6 measures this.
pub fn count_good_tree_nodes(g: &Graph) -> usize {
    g.nodes()
        .filter(|&v| {
            let d = g.degree(v);
            d <= 1 || (d == 2 && g.neighbors(v).iter().all(|&u| g.degree(u) <= 2))
        })
        .count()
}

/// The number of nodes that are *good* in the sense of the paper's
/// Section 4 (following Alon–Babai–Itai): `v` is good if at least a third
/// of its neighbors have degree ≤ deg(v). Degree-0 nodes count as good.
pub fn count_good_mis_nodes(g: &Graph) -> usize {
    g.nodes().filter(|&v| is_good_mis_node(g, v)).count()
}

/// Whether a single node is good in the Section 4 sense.
pub fn is_good_mis_node(g: &Graph, v: NodeId) -> bool {
    let d = g.degree(v);
    if d == 0 {
        return true;
    }
    let low = g.neighbors(v).iter().filter(|&&u| g.degree(u) <= d).count();
    3 * low >= d
}

/// The number of edges incident on at least one good (Section 4) node.
///
/// Lemma 4.4 asserts this is more than half of all edges; experiment E3
/// measures it.
pub fn edges_on_good_mis_nodes(g: &Graph) -> usize {
    g.edges()
        .filter(|&(u, v)| is_good_mis_node(g, u) || is_good_mis_node(g, v))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn independence_on_path() {
        let g = generators::path(4);
        assert!(is_independent_set(&g, &[true, false, true, false]));
        assert!(!is_independent_set(&g, &[true, true, false, false]));
        assert!(is_independent_set(&g, &[false; 4]));
    }

    #[test]
    fn maximality_on_path() {
        let g = generators::path(4);
        assert!(is_maximal_independent_set(&g, &[true, false, true, false]));
        assert!(is_maximal_independent_set(&g, &[true, false, false, true]));
        // Independent but not maximal: node 3 could be added.
        assert!(!is_maximal_independent_set(
            &g,
            &[true, false, false, false]
        ));
        // Not independent at all.
        assert!(!is_maximal_independent_set(&g, &[true, true, false, true]));
    }

    #[test]
    fn empty_graph_mis_is_all_nodes() {
        let g = crate::Graph::empty(3);
        assert!(is_maximal_independent_set(&g, &[true, true, true]));
        assert!(!is_maximal_independent_set(&g, &[true, false, true]));
    }

    #[test]
    fn coloring_validators() {
        let g = generators::cycle(4);
        assert!(is_proper_coloring(&g, &[0, 1, 0, 1]));
        assert!(!is_proper_coloring(&g, &[0, 1, 0, 0]));
        assert!(is_proper_k_coloring(&g, &[0, 1, 0, 1], 2));
        assert!(!is_proper_k_coloring(&g, &[0, 1, 0, 2], 2));
        assert!(is_proper_k_coloring(&g, &[0, 1, 0, 2], 3));
    }

    #[test]
    fn matching_validators() {
        let g = generators::path(5); // edges 0-1,1-2,2-3,3-4
        assert!(is_matching(&g, &[(0, 1), (2, 3)]));
        assert!(is_maximal_matching(&g, &[(0, 1), (2, 3)]));
        assert!(is_maximal_matching(&g, &[(1, 2), (3, 4)]));
        // Matching, but edge 2-3 has no matched endpoint.
        assert!(!is_maximal_matching(&g, &[(0, 1)]));
        // Shares endpoint 1.
        assert!(!is_matching(&g, &[(0, 1), (1, 2)]));
        // Not an edge.
        assert!(!is_matching(&g, &[(0, 2)]));
        // Reversed orientation is fine.
        assert!(is_matching(&g, &[(1, 0)]));
        // Empty matching is a matching but not maximal (unless no edges).
        assert!(is_matching(&g, &[]));
        assert!(!is_maximal_matching(&g, &[]));
        assert!(is_maximal_matching(&crate::Graph::empty(3), &[]));
    }

    #[test]
    fn length_mismatch_is_a_typed_error() {
        let g = generators::path(4);
        assert_eq!(
            try_is_independent_set(&g, &[true, false]),
            Err(TopologyError::LengthMismatch {
                what: "in_set",
                expected: 4,
                actual: 2,
            })
        );
        assert!(try_is_maximal_independent_set(&g, &[true; 3]).is_err());
        assert!(try_is_proper_coloring(&g, &[0, 1]).is_err());
        assert!(try_is_proper_k_coloring(&g, &[0, 1], 2).is_err());
        // The panicking fronts still agree with the Ok path.
        assert!(try_is_independent_set(&g, &[true, false, true, false]).unwrap());
    }

    #[test]
    #[should_panic(expected = "length")]
    fn legacy_validator_still_panics_on_bad_length() {
        let g = generators::path(3);
        is_proper_coloring(&g, &[0, 1]);
    }

    #[test]
    fn good_tree_nodes_on_known_shapes() {
        // Path: every node is good (leaves + degree-2 with degree-≤2 nbrs).
        assert_eq!(count_good_tree_nodes(&generators::path(6)), 6);
        // Star K_{1,5}: the 5 leaves are good, the center is not.
        assert_eq!(count_good_tree_nodes(&generators::star(6)), 5);
        let n = 101;
        let g = generators::random_tree(n, 7);
        assert!(count_good_tree_nodes(&g) * 5 >= n, "Observation 5.2");
    }

    #[test]
    fn good_mis_nodes_on_known_shapes() {
        // In a regular graph every node is good.
        assert_eq!(count_good_mis_nodes(&generators::cycle(5)), 5);
        assert_eq!(count_good_mis_nodes(&generators::complete(4)), 4);
        // In a star, leaves have their only neighbor of higher degree; the
        // center has all neighbors of lower degree.
        let g = generators::star(5);
        assert!(is_good_mis_node(&g, 0));
        assert!(!is_good_mis_node(&g, 1));
    }

    #[test]
    fn lemma_4_4_half_edges_on_good_nodes() {
        for seed in 0..5 {
            let g = generators::gnp(120, 0.05, seed);
            let m = g.edge_count();
            if m == 0 {
                continue;
            }
            assert!(
                2 * edges_on_good_mis_nodes(&g) > m,
                "Lemma 4.4 violated at seed {seed}"
            );
        }
    }
}
