//! Engine-throughput bench: rounds/sec of the flat delivery engine vs the
//! naive reference executor on gnp(50k, avg deg 8).
//!
//! The workload is a "blinker" protocol that alternates two letters every
//! round, so every delivery overwrites a port with a *different* letter —
//! the worst case for the incremental count maintenance and a full-fan-out
//! stress of the reverse-port-map delivery path. The protocol never
//! terminates; each measured run executes exactly `ROUNDS` rounds and
//! ends in the expected round-limit error.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocol, TableProtocolBuilder, Transitions};
use stoneage_graph::generators;
use stoneage_sim::{run_sync_reference, ExecError, Simulation, SyncConfig};

const ROUNDS: u64 = 20;

/// Never-terminating protocol: broadcast A, then B, then A, ...
fn blinker() -> TableProtocol {
    let alphabet = Alphabet::new(["a", "b"]);
    let mut builder = TableProtocolBuilder::new("blinker", alphabet, 1, Letter(0));
    let s0 = builder.add_state("s0", Letter(0));
    let s1 = builder.add_state("s1", Letter(1));
    builder.add_input_state(s0);
    builder.set_transition_all(s0, Transitions::det(s1, Some(Letter(0))));
    builder.set_transition_all(s1, Transitions::det(s0, Some(Letter(1))));
    builder.build().unwrap()
}

fn bench_engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_throughput");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000] {
        let g = generators::gnp(n, 8.0 / n as f64, 7);
        let p = AsMulti(blinker());
        let config = SyncConfig {
            seed: 1,
            max_rounds: ROUNDS,
        };
        group.bench_with_input(BenchmarkId::new("flat", n), &g, |b, g| {
            b.iter(|| {
                let err = Simulation::sync(&p, g)
                    .seed(config.seed)
                    .budget(config.max_rounds)
                    .run()
                    .unwrap_err();
                assert!(matches!(err, ExecError::RoundLimit { .. }));
            });
        });
        group.bench_with_input(BenchmarkId::new("reference", n), &g, |b, g| {
            b.iter(|| {
                let err = run_sync_reference(&p, g, &config).unwrap_err();
                assert!(matches!(err, ExecError::RoundLimit { .. }));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_throughput);
criterion_main!(benches);
