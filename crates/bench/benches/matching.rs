//! Bench E14: maximal matching — the nFSM port-select protocol vs the
//! message-passing proposal baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_baselines::matching as mp;
use stoneage_graph::generators;
use stoneage_protocols::run_matching;

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("matching");
    group.sample_size(10);
    for &n in &[128usize, 512, 2048] {
        let g = generators::gnp(n, 6.0 / n as f64, 8);
        group.bench_with_input(BenchmarkId::new("nfsm_port_select", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_matching(g, seed, 10_000_000).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("message_passing", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                mp::proposal_matching(g, seed)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
