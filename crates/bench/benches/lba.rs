//! Bench E9/E10: the Section 6 simulations — the direct LBA runner, the
//! Lemma 6.2 path protocol, and the Lemma 6.1 sweep simulator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_graph::generators;
use stoneage_lba::{machines, sweep, to_nfsm};
use stoneage_protocols::{MisProtocol, MisState};

fn bench_lba(c: &mut Criterion) {
    let mut group = c.benchmark_group("lemma62_path_vs_direct");
    group.sample_size(10);
    let m = machines::abc_equal();
    for &n in &[4usize, 8, 16] {
        let word: String = format!("{}{}{}", "a".repeat(n), "b".repeat(n), "c".repeat(n));
        let input = machines::encode_abc(&word);
        group.bench_with_input(BenchmarkId::new("direct", 3 * n), &input, |b, input| {
            b.iter(|| m.run(input, 0, 100_000_000).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("path_nfsm", 3 * n), &input, |b, input| {
            b.iter(|| to_nfsm::run_on_path(&m, input, 0, 100_000_000).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("lemma61_sweep");
    group.sample_size(10);
    for &n in &[16usize, 48] {
        let g = generators::gnp(n, 8.0 / n as f64, 2);
        group.bench_with_input(BenchmarkId::new("mis_on_tape", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                sweep::simulate_on_tape(
                    &MisProtocol::new(),
                    g,
                    &vec![0usize; g.node_count()],
                    seed,
                    1_000_000,
                    |s| *s as u64,
                    |c| MisState::ALL[c as usize],
                )
                .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lba);
criterion_main!(benches);
