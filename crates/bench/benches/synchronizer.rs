//! Bench E7/E8: the compiler stack — single-letterization (Thm 3.4) on
//! the synchronous engine, and the synchronizer (Thm 3.1) under the
//! asynchronous adversarial engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_core::{AsMulti, SingleLetter, Synchronized};
use stoneage_graph::generators;
use stoneage_protocols::{
    wave::{wave_inputs, wave_protocol},
    MisProtocol,
};
use stoneage_sim::adversary::{Lockstep, UniformRandom};
use stoneage_sim::Simulation;

fn bench_single_letter(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm34_single_letter");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        let g = generators::gnp(n, 8.0 / n as f64, 2);
        group.bench_with_input(BenchmarkId::new("mis_compiled", n), &g, |b, g| {
            let p = AsMulti(SingleLetter::new(MisProtocol::new()));
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::sync(&p, g).seed(seed).run().unwrap()
            });
        });
    }
    group.finish();
}

fn bench_synchronizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm31_synchronizer_async");
    group.sample_size(10);
    for &n in &[32usize, 128] {
        let g = generators::path(n);
        let inputs = wave_inputs(n, &[0]);
        let p = Synchronized::new(wave_protocol());
        group.bench_with_input(BenchmarkId::new("wave_lockstep", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::asynchronous(&p, g, &Lockstep)
                    .seed(seed)
                    .inputs(&inputs)
                    .run()
                    .unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("wave_uniform", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::asynchronous(&p, g, &UniformRandom { seed: 9 })
                    .seed(seed)
                    .inputs(&inputs)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_letter, bench_synchronizer);
criterion_main!(benches);
