//! Bench E5: the tree 3-coloring protocol's synchronous run-time
//! (Theorem 5.4 — expect rounds ~ log n, wall time ~ n·log n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_graph::generators;
use stoneage_protocols::ColoringProtocol;
use stoneage_sim::Simulation;

fn bench_coloring(c: &mut Criterion) {
    let mut group = c.benchmark_group("coloring_sync");
    group.sample_size(10);
    for &n in &[64usize, 512, 4096, 16384] {
        let g = generators::random_tree(n, 5);
        group.bench_with_input(BenchmarkId::new("random-tree", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::sync(&ColoringProtocol::new(), g)
                    .seed(seed)
                    .budget(10_000_000)
                    .run()
                    .unwrap()
            });
        });
    }
    for &n in &[512usize, 4096] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::new("path", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::sync(&ColoringProtocol::new(), g)
                    .seed(seed)
                    .budget(10_000_000)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_coloring);
criterion_main!(benches);
