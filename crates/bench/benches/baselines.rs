//! Bench E11/E12: the classical baselines, for wall-clock context next to
//! the nFSM protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_baselines::{beeping, cole_vishkin, luby, metivier};
use stoneage_graph::generators;

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_mis");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        let g = generators::gnp(n, 8.0 / n as f64, 4);
        group.bench_with_input(BenchmarkId::new("luby", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                luby::luby_mis(g, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("metivier", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                metivier::metivier_mis(g, seed)
            });
        });
        group.bench_with_input(BenchmarkId::new("beeping", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                beeping::beeping_mis(g, seed)
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("baseline_coloring");
    group.sample_size(10);
    for &n in &[1024usize, 16384] {
        let g = generators::random_tree(n, 6);
        group.bench_with_input(BenchmarkId::new("cole_vishkin", n), &g, |b, g| {
            b.iter(|| cole_vishkin::cole_vishkin_3color(g, 0));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
