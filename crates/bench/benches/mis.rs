//! Bench E2: the MIS protocol's synchronous run-time across graph sizes
//! and families (Theorem 4.5 — expect rounds ~ log² n, wall time ~ n·log² n).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stoneage_graph::generators;
use stoneage_protocols::MisProtocol;
use stoneage_sim::Simulation;

fn bench_mis(c: &mut Criterion) {
    let mut group = c.benchmark_group("mis_sync");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024, 4096] {
        let g = generators::gnp(n, 8.0 / n as f64, 7);
        group.bench_with_input(BenchmarkId::new("gnp-deg8", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::sync(&MisProtocol::new(), g)
                    .seed(seed)
                    .run()
                    .unwrap()
            });
        });
    }
    for &n in &[256usize, 1024] {
        let g = generators::random_regular(n, 4, 3);
        group.bench_with_input(BenchmarkId::new("regular4", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Simulation::sync(&MisProtocol::new(), g)
                    .seed(seed)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mis);
criterion_main!(benches);
