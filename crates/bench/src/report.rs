//! Structured experiment reports: aligned text tables + JSON export.

use std::fmt::Write as _;

use crate::json::Value;

/// A cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// Text.
    Text(String),
    /// Integer.
    Int(i64),
    /// Floating point (rendered with 3 decimals).
    Float(f64),
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_owned())
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::Int(v)
    }
}

impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v as i64)
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float(v) => format!("{v:.3}"),
        }
    }
}

/// One experiment's result: a titled table plus free-form findings.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id (e.g. "E2").
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<Cell>>,
    /// Headline findings (printed under the table, kept in JSON).
    pub findings: Vec<String>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|c| (*c).to_owned()).collect(),
            rows: Vec::new(),
            findings: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a finding line.
    pub fn finding(&mut self, text: impl Into<String>) {
        self.findings.push(text.into());
    }

    /// Renders the aligned text form.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "## {} — {}", self.id, self.title).unwrap();
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        writeln!(out, "{}", header.join("  ")).unwrap();
        writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )
        .unwrap();
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            writeln!(out, "{}", line.join("  ")).unwrap();
        }
        for f in &self.findings {
            writeln!(out, "* {f}").unwrap();
        }
        out
    }

    /// JSON form.
    pub fn to_json(&self) -> Value {
        let cell = |c: &Cell| match c {
            Cell::Text(s) => Value::Str(s.clone()),
            Cell::Int(v) => Value::Int(*v),
            Cell::Float(v) => Value::Float(*v),
        };
        Value::Object(vec![
            ("id".to_owned(), Value::Str(self.id.clone())),
            ("title".to_owned(), Value::Str(self.title.clone())),
            (
                "columns".to_owned(),
                Value::Array(self.columns.iter().map(|c| Value::Str(c.clone())).collect()),
            ),
            (
                "rows".to_owned(),
                Value::Array(
                    self.rows
                        .iter()
                        .map(|r| Value::Array(r.iter().map(cell).collect()))
                        .collect(),
                ),
            ),
            (
                "findings".to_owned(),
                Value::Array(
                    self.findings
                        .iter()
                        .map(|f| Value::Str(f.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new("E0", "demo", &["n", "rounds", "note"]);
        t.row(vec![16usize.into(), 3.25f64.into(), "ok".into()]);
        t.row(vec![1024usize.into(), 12.5f64.into(), "fine".into()]);
        t.finding("all good");
        let text = t.render();
        assert!(text.contains("E0"));
        assert!(text.contains("1024"));
        assert!(text.contains("12.500"));
        assert!(text.contains("* all good"));
        let json = t.to_json();
        assert_eq!(json["id"], "E0");
        assert_eq!(json["rows"][0][0], 16);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("E0", "demo", &["a", "b"]);
        t.row(vec![1usize.into()]);
    }
}
