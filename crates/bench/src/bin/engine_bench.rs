//! Emits the `BENCH_engine.json` perf-trajectory snapshot:
//!
//! * **sync section** — rounds/sec of the flat delivery engine vs the
//!   preserved naive reference executor on gnp(50k, avg deg 8);
//! * **async sweep** — events/sec (and derived rounds/sec) of the
//!   calendar-wheel scheduler vs the preserved binary-heap scheduler on
//!   gnp / tree / grid instances under a uniform-random adversary;
//! * **parallel sweep** (`--features parallel` builds) — rounds/sec of
//!   the serial flat engine vs the fully parallel engine (chunked
//!   phase 1 + sharded-write-buffer phase 2) at several worker counts on
//!   the same gnp instance;
//! * **round-pipeline sweep** (`--features parallel` builds) — the
//!   two-join `RoundMode::Joined` schedule vs the one-join
//!   `RoundMode::Fused` schedule (phase 2b deferred onto per-worker
//!   plane shards) at worker counts {2, 4, available} on gnp / tree /
//!   grid instances;
//! * **steal sweep** (`--features parallel` builds) — the static
//!   slot-balanced chunk schedule vs the work-stealing scheduler
//!   (`ChunkScheduler::Stealing`) on skewed power-law / hub-and-spoke
//!   instances (plus a uniform gnp control) under an RNG-heavy prober
//!   workload, where the static schedule's slot balance mis-predicts
//!   per-node cost;
//! * **churn sweep** — rounds/sec of the incrementally patched engine vs
//!   the `ChurnOracle` full-rebuild reference under a dense fault
//!   schedule, plus per-event re-stabilization rounds of MIS / coloring
//!   / matching recorded by a `StabilizationObserver`;
//! * **snapshot sweep** — the checkpoint/resume layer's cost vs graph
//!   size: rounds/sec with an every-round `checkpoint_every(1)` cadence
//!   vs the plain engine (the overhead the `--max-snapshot-overhead`
//!   gate bounds), `Snapshot::to_bytes` / `from_bytes` frame throughput,
//!   and rounds/sec of the resumed remainder of a mid-run frame;
//! * **fault sweep** — rounds/sec of the sync engine with an active
//!   mixed drop/duplicate/corrupt `FaultPlan` vs the fault-free engine
//!   (the overhead the `--max-fault-overhead` gate bounds), plus a
//!   paper-MIS-vs-self-stabilizing-MIS recovery record under a
//!   restart-amid-halted-neighbors schedule (the paper protocol wedges;
//!   the `selfstab` variant re-stabilizes in a few rounds);
//! * **server sweep** — submit-to-done jobs/sec of a batch of small MIS
//!   jobs through the `stoneage-server` HTTP orchestrator vs direct
//!   `Simulation` builder runs, one core each (the overhead the
//!   `--max-server-overhead` gate bounds).
//!
//! ```text
//! engine_bench                          # writes BENCH_engine.json in the cwd
//! engine_bench --out path.json          # custom output path
//! engine_bench --quick                  # CI-sized instances (n = 5k)
//! engine_bench --min-async-speedup 1.0  # exit(1) if any wheel entry
//!                                       # regresses below that ratio
//! engine_bench --min-parallel-speedup 1.5
//!                                       # exit(1) if the parallel engine at
//!                                       # 4+ workers falls below that ratio
//!                                       # (skipped with a warning when the
//!                                       # host has fewer than 4 CPUs)
//! engine_bench --min-fused-speedup 1.0  # exit(1) if the fused pipeline at
//!                                       # 4+ workers falls below that ratio
//!                                       # of the joined pipeline (same
//!                                       # self-skip below 4 CPUs)
//! engine_bench --min-steal-speedup 1.3   # exit(1) if the stealing scheduler
//!                                       # at 4+ workers falls below that
//!                                       # ratio of the static schedule on
//!                                       # any skewed family (same self-skip
//!                                       # below 4 CPUs)
//! engine_bench --min-churn-patch-speedup 1.5
//!                                       # exit(1) if incremental churn
//!                                       # patching falls below that ratio of
//!                                       # the full rebuild (self-skips on
//!                                       # instances under 20k nodes)
//! engine_bench --max-snapshot-overhead 2.0
//!                                       # exit(1) if the every-round
//!                                       # checkpoint cadence slows the sync
//!                                       # engine by more than that factor on
//!                                       # any family
//! engine_bench --max-server-overhead 3.0
//!                                       # exit(1) if the HTTP orchestrator
//!                                       # slows a batch of small jobs by more
//!                                       # than that factor over direct runs
//! engine_bench --max-fault-overhead 2.0
//!                                       # exit(1) if the active FaultPlan
//!                                       # slows the sync engine by more than
//!                                       # that factor on any family
//! ```
//!
//! The sync workload is the same blinker protocol as `benches/engine.rs`:
//! every round every node broadcasts, every delivery flips its port's
//! letter, so both the reverse-port-map write path and the incremental
//! count maintenance run at full tilt. The async workload runs the same
//! blinker under `UniformRandom` to a fixed event budget, so heap and
//! wheel execute the *identical* event sequence (they are bit-identical
//! per seed) and differ only in scheduling cost. Each measurement takes
//! the best of several repetitions.

use std::io::Write as _;
use std::time::Instant;

use stoneage_bench::json::Value;
use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocol, TableProtocolBuilder, Transitions};
use stoneage_graph::{generators, Graph, TopologyEvent};
use stoneage_sim::adversary::UniformRandom;
use stoneage_sim::{
    run_sync_reference, AsyncOptions, Backend, ChurnPlan, ExecError, FaultPlan, PatchMode,
    SchedulerKind, Simulation, StabilizationObserver, SyncConfig, SyncOutcome,
};

fn blinker() -> TableProtocol {
    let alphabet = Alphabet::new(["a", "b"]);
    let mut builder = TableProtocolBuilder::new("blinker", alphabet, 1, Letter(0));
    let s0 = builder.add_state("s0", Letter(0));
    let s1 = builder.add_state("s1", Letter(1));
    builder.add_input_state(s0);
    builder.set_transition_all(s0, Transitions::det(s1, Some(Letter(0))));
    builder.set_transition_all(s1, Transitions::det(s0, Some(Letter(1))));
    builder.build().unwrap()
}

/// The steal-sweep workload: a never-terminating prober whose every
/// transition is a uniform three-way choice, so each node burns an RNG
/// draw per round and per-*node* work dominates per-slot work. That is
/// exactly the cost profile the slot-balanced static `ShardPlan`
/// mis-predicts on node-count-skewed graphs — a hub shard holds a few
/// giant-degree nodes (few RNG draws) while spoke shards hold thousands
/// — and the work-stealing scheduler absorbs.
#[cfg(feature = "parallel")]
fn prober() -> TableProtocol {
    let alphabet = Alphabet::new(["a", "b"]);
    let mut builder = TableProtocolBuilder::new("prober", alphabet, 1, Letter(0));
    let s0 = builder.add_state("s0", Letter(0));
    let s1 = builder.add_state("s1", Letter(1));
    builder.add_input_state(s0);
    builder.set_transition_all(
        s0,
        Transitions::uniform(vec![
            (s1, Some(Letter(0))),
            (s1, Some(Letter(1))),
            (s0, None),
        ]),
    );
    builder.set_transition_all(
        s1,
        Transitions::uniform(vec![
            (s0, Some(Letter(1))),
            (s0, Some(Letter(0))),
            (s1, None),
        ]),
    );
    builder.build().unwrap()
}

fn measure(rounds: u64, reps: usize, run: impl Fn() -> Result<SyncOutcome, ExecError>) -> f64 {
    // Warm-up.
    let _ = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let err = run().expect_err("workload never terminates");
        assert!(matches!(err, ExecError::RoundLimit { .. }));
        best = best.min(start.elapsed().as_secs_f64());
    }
    rounds as f64 / best
}

/// Best-rep events/sec of one async scheduler on a fixed event budget,
/// plus the unfinished-node frontier at the budget (a cheap differential
/// guard across schedulers).
fn measure_async(
    g: &Graph,
    scheduler: SchedulerKind,
    max_events: u64,
    reps: usize,
) -> (f64, usize) {
    let p = blinker();
    let adv = UniformRandom { seed: 11 };
    let run = || {
        Simulation::asynchronous(&p, g, &adv)
            .seed(1)
            .budget(max_events)
            .backend(Backend::Async(
                AsyncOptions::new(&adv).with_scheduler(scheduler),
            ))
            .run()
            .map(|o| o.into_async_outcome().expect("async backend"))
    };
    // Warm-up.
    let warm = run().expect_err("blinker never terminates");
    let unfinished = match warm {
        ExecError::EventLimit { unfinished, .. } => unfinished,
        other => panic!("expected EventLimit, got {other:?}"),
    };
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let err = run().expect_err("blinker never terminates");
        assert!(matches!(err, ExecError::EventLimit { .. }));
        best = best.min(start.elapsed().as_secs_f64());
    }
    (max_events as f64 / best, unfinished)
}

/// One serial-vs-parallel measurement of the sync engine.
#[cfg(feature = "parallel")]
struct ParEntry {
    workers: usize,
    /// The worker count the engine actually ran with, surfaced by
    /// `Outcome::workers` — the snapshot records it instead of guessing
    /// from `host_cpus`.
    workers_used: usize,
    rounds_per_sec: f64,
    speedup: f64,
}

/// Measures the fully parallel sync engine (chunked phase 1 + sharded
/// buffered phase 2) against the serial `flat` baseline on the same
/// instance, at worker counts {2, 4, available}. Worker counts beyond
/// the host's CPUs are still measured (the OS time-slices them) so the
/// recorded sweep is comparable across hosts, but the gate in `main`
/// only enforces counts the hardware can actually run.
#[cfg(feature = "parallel")]
fn parallel_sweep(
    g: &Graph,
    config: &stoneage_sim::SyncConfig,
    rounds: u64,
    reps: usize,
    serial_rps: f64,
) -> (Vec<ParEntry>, usize) {
    use stoneage_sim::{MergeStrategy, ParallelPolicy};
    let hw = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut worker_counts = vec![2usize, 4, hw];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    worker_counts.retain(|&w| w >= 2);
    let p = AsMulti(blinker());
    let inputs = vec![0usize; g.node_count()];
    let mut entries = Vec::new();
    for w in worker_counts {
        let policy = ParallelPolicy::forced(w, MergeStrategy::DestinationSharded);
        // The count the engine will actually run with — `Outcome::workers`
        // surfaces this on completed runs; the blinker workload always
        // ends at the round budget (an Err), so resolve it from the
        // policy the same way the builder does.
        let workers_used = if policy.use_serial(g.node_count()) {
            1
        } else {
            policy.resolve_workers().min(g.node_count().max(1))
        };
        let rps = measure(rounds, reps, || {
            Simulation::sync(&p, g)
                .seed(config.seed)
                .budget(config.max_rounds)
                .inputs(&inputs)
                .parallel(policy)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });
        let entry = ParEntry {
            workers: w,
            workers_used,
            rounds_per_sec: rps,
            speedup: rps / serial_rps,
        };
        eprintln!(
            "  parallel[w={} used={}]: {:>8.1} rounds/sec ({:.2}x serial)",
            entry.workers, entry.workers_used, entry.rounds_per_sec, entry.speedup
        );
        entries.push(entry);
    }
    (entries, hw)
}

/// One joined-vs-fused measurement of the parallel round pipeline.
#[cfg(feature = "parallel")]
struct RoundPipelineEntry {
    family: &'static str,
    n: usize,
    workers: usize,
    workers_used: usize,
    joined_rounds_per_sec: f64,
    fused_rounds_per_sec: f64,
    /// fused / joined.
    speedup: f64,
}

/// Measures the two round-pipeline schedules — `RoundMode::Joined` (two
/// scope joins per round) vs `RoundMode::Fused` (one) — on the same
/// instances and worker counts, per graph family. Worker counts beyond
/// the host's CPUs are still recorded for cross-host comparability; the
/// gate in `main` only enforces counts the hardware can genuinely run.
#[cfg(feature = "parallel")]
fn round_pipeline_sweep(quick: bool, rounds: u64, reps: usize) -> (Vec<RoundPipelineEntry>, usize) {
    use stoneage_sim::{MergeStrategy, ParallelPolicy, RoundMode};
    let n: usize = if quick { 5_000 } else { 50_000 };
    let side = (n as f64).sqrt().ceil() as usize;
    let graphs: [(&'static str, Graph); 3] = [
        ("gnp", generators::gnp(n, 8.0 / n as f64, 7)),
        ("tree", generators::random_tree(n, 13)),
        ("grid", generators::grid(side, side)),
    ];
    let hw = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut worker_counts = vec![2usize, 4, hw];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    worker_counts.retain(|&w| w >= 2);
    let p = AsMulti(blinker());
    let config = SyncConfig {
        seed: 1,
        max_rounds: rounds,
    };
    let mut entries = Vec::new();
    for (family, g) in &graphs {
        let nodes = g.node_count();
        eprintln!(
            "engine_bench[round_pipeline]: {family}(n = {nodes}), joined vs fused, \
             {rounds} rounds x {reps} reps"
        );
        let inputs = vec![0usize; nodes];
        for &w in &worker_counts {
            let rps = |round: RoundMode| {
                let policy =
                    ParallelPolicy::forced(w, MergeStrategy::DestinationSharded).with_round(round);
                measure(rounds, reps, || {
                    Simulation::sync(&p, g)
                        .seed(config.seed)
                        .budget(config.max_rounds)
                        .inputs(&inputs)
                        .parallel(policy)
                        .run()
                        .map(|o| o.into_sync_outcome().expect("sync backend"))
                })
            };
            let joined = rps(RoundMode::Joined);
            let fused = rps(RoundMode::Fused);
            let entry = RoundPipelineEntry {
                family,
                n: nodes,
                workers: w,
                workers_used: w.min(nodes.max(1)),
                joined_rounds_per_sec: joined,
                fused_rounds_per_sec: fused,
                speedup: fused / joined,
            };
            eprintln!(
                "  {family}[w={}]: joined {:>8.1} r/s, fused {:>8.1} r/s ({:.2}x)",
                entry.workers,
                entry.joined_rounds_per_sec,
                entry.fused_rounds_per_sec,
                entry.speedup
            );
            entries.push(entry);
        }
    }
    (entries, hw)
}

/// One static-vs-stealing measurement of the chunk scheduler.
#[cfg(feature = "parallel")]
struct StealEntry {
    family: &'static str,
    /// Whether the instance is degree-skewed. The `--min-steal-speedup`
    /// gate only enforces skewed entries; gnp rides along as the uniform
    /// control where stealing should be ~neutral.
    skewed: bool,
    n: usize,
    workers: usize,
    workers_used: usize,
    static_rounds_per_sec: f64,
    stealing_rounds_per_sec: f64,
    /// stealing / static.
    speedup: f64,
    /// Chunk descriptors per round under the stealing schedule — a pure
    /// function of graph and worker count, so deterministic.
    chunks_per_round: u64,
    /// Chunks stolen across one completed probe run (timing-dependent;
    /// recorded for colour, never gated).
    steals_observed: u64,
}

/// Measures the static chunk schedule vs `ChunkScheduler::Stealing` per
/// graph family on the RNG-heavy [`prober`] workload. The skewed
/// families are where the slot-balanced static `ShardPlan` goes wrong:
/// it equalizes port *slots*, so a shard owning the hub holds few nodes
/// and the spoke shards hold thousands, and when per-node cost (an RNG
/// draw per transition) dominates per-slot cost the spoke workers run
/// long while the hub worker idles. Stealing splits every shard into
/// fine chunks and lets the idle worker drain the stragglers. Worker
/// counts beyond the host's CPUs are still recorded for cross-host
/// comparability; the gate in `main` only enforces counts the hardware
/// can genuinely run.
#[cfg(feature = "parallel")]
fn steal_sweep(quick: bool, rounds: u64, reps: usize) -> (Vec<StealEntry>, usize) {
    use stoneage_sim::parbuf::{ChunkPlan, ShardPlan};
    use stoneage_sim::{ChunkScheduler, MergeStrategy, ParallelPolicy};
    let n: usize = if quick { 5_000 } else { 50_000 };
    let graphs: [(&'static str, bool, Graph); 3] = [
        ("power-law", true, generators::power_law(n, 2, 0.95, 7)),
        ("hub-spoke", true, generators::hub_and_spoke(4, n / 4)),
        ("gnp", false, generators::gnp(n, 8.0 / n as f64, 7)),
    ];
    let hw = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let mut worker_counts = vec![2usize, 4, hw];
    worker_counts.sort_unstable();
    worker_counts.dedup();
    worker_counts.retain(|&w| w >= 2);
    let p = AsMulti(prober());
    let mut entries = Vec::new();
    for (family, skewed, g) in &graphs {
        let nodes = g.node_count();
        eprintln!(
            "engine_bench[steal]: {family}(n = {nodes}), static vs stealing, \
             {rounds} rounds x {reps} reps"
        );
        let inputs = vec![0usize; nodes];
        for &w in &worker_counts {
            let rps = |scheduler: ChunkScheduler| {
                let policy = ParallelPolicy::forced(w, MergeStrategy::DestinationSharded)
                    .with_scheduler(scheduler);
                measure(rounds, reps, || {
                    Simulation::sync(&p, g)
                        .seed(1)
                        .budget(rounds)
                        .inputs(&inputs)
                        .parallel(policy)
                        .run()
                        .map(|o| o.into_sync_outcome().expect("sync backend"))
                })
            };
            let static_rps = rps(ChunkScheduler::Static);
            let stealing_rps = rps(ChunkScheduler::Stealing);
            let workers_used = w.min(nodes.max(1));
            let chunks_per_round = ChunkPlan::new(g, &ShardPlan::new(g, workers_used)).len() as u64;
            // The prober always ends at the round budget (an Err), so its
            // Outcome — and steal counters — never materialize. Run one
            // *terminating* protocol under the same stealing policy to
            // record a real steal tally for the snapshot.
            let steals_observed =
                Simulation::sync(&AsMulti(stoneage_testkit::count_neighbors(3)), g)
                    .seed(1)
                    .parallel(
                        ParallelPolicy::forced(w, MergeStrategy::DestinationSharded)
                            .with_stealing(),
                    )
                    .run()
                    .map(|o| o.steals.steals)
                    .unwrap_or(0);
            let entry = StealEntry {
                family,
                skewed: *skewed,
                n: nodes,
                workers: w,
                workers_used,
                static_rounds_per_sec: static_rps,
                stealing_rounds_per_sec: stealing_rps,
                speedup: stealing_rps / static_rps,
                chunks_per_round,
                steals_observed,
            };
            eprintln!(
                "  {family}[w={}]: static {:>8.1} r/s, stealing {:>8.1} r/s ({:.2}x, \
                 {} chunks/round, {} steals on probe)",
                entry.workers,
                entry.static_rounds_per_sec,
                entry.stealing_rounds_per_sec,
                entry.speedup,
                entry.chunks_per_round,
                entry.steals_observed
            );
            entries.push(entry);
        }
    }
    (entries, hw)
}

/// One incremental-vs-rebuild measurement of the churn patch path.
struct ChurnEntry {
    family: &'static str,
    n: usize,
    edges: usize,
    /// Scheduled topology events per run.
    events: usize,
    incremental_rounds_per_sec: f64,
    rebuild_rounds_per_sec: f64,
    /// incremental / rebuild.
    patch_speedup: f64,
}

/// A dense fault schedule for the churn sweep: every round toggles a
/// fixed set of edges (delete on odd rounds, re-insert on even) and
/// flips node 0 between crashed and restarted, so both the slot
/// retire/revive path and the lifecycle path run every boundary.
fn churn_sweep_plan(g: &Graph, rounds: u64) -> ChurnPlan {
    let toggled: Vec<(u32, u32)> = g.edges().take(8).collect();
    let mut plan = ChurnPlan::new();
    for r in 1..rounds {
        for &(u, v) in &toggled {
            let ev = if r % 2 == 1 {
                TopologyEvent::EdgeDelete(u, v)
            } else {
                TopologyEvent::EdgeInsert(u, v)
            };
            plan = plan.at(r, ev);
        }
        let life = if r % 2 == 1 {
            TopologyEvent::Crash(0)
        } else {
            TopologyEvent::Restart(0)
        };
        plan = plan.at(r, life);
    }
    plan
}

/// Measures incremental port-map patching against the `ChurnOracle`
/// full-rebuild reference on the same dense fault schedule, per graph
/// family. Both paths are bit-identical (pinned by the churn
/// differential suite); only the boundary cost differs — incremental
/// touches O(deg) slots per event, the rebuild reconstructs the whole
/// O(|E|) port store.
fn churn_sweep(quick: bool, rounds: u64, reps: usize) -> Vec<ChurnEntry> {
    let n: usize = if quick { 5_000 } else { 50_000 };
    let side = (n as f64).sqrt().ceil() as usize;
    let graphs: [(&'static str, Graph); 3] = [
        ("gnp", generators::gnp(n, 8.0 / n as f64, 7)),
        ("tree", generators::random_tree(n, 13)),
        ("grid", generators::grid(side, side)),
    ];
    let p = AsMulti(blinker());
    let mut entries = Vec::new();
    for (family, g) in &graphs {
        let nodes = g.node_count();
        let plan = churn_sweep_plan(g, rounds);
        let events = plan.events().len();
        eprintln!(
            "engine_bench[churn]: {family}(n = {nodes}), {events} events over {rounds} rounds \
             x {reps} reps, incremental vs rebuild"
        );
        let rps = |mode: PatchMode| {
            let moded = plan.clone().with_mode(mode);
            measure(rounds, reps, || {
                Simulation::sync(&p, g)
                    .seed(1)
                    .budget(rounds)
                    .with_churn(&moded)
                    .run()
                    .map(|o| o.into_sync_outcome().expect("sync backend"))
            })
        };
        let incremental = rps(PatchMode::Incremental);
        let rebuild = rps(PatchMode::Rebuild);
        let entry = ChurnEntry {
            family,
            n: nodes,
            edges: g.edge_count(),
            events,
            incremental_rounds_per_sec: incremental,
            rebuild_rounds_per_sec: rebuild,
            patch_speedup: incremental / rebuild,
        };
        eprintln!(
            "  {family}: incremental {:>8.1} r/s, rebuild {:>8.1} r/s ({:.2}x)",
            entry.incremental_rounds_per_sec, entry.rebuild_rounds_per_sec, entry.patch_speedup
        );
        entries.push(entry);
    }
    entries
}

/// One checkpoint/resume cost measurement of the snapshot layer.
struct SnapshotEntry {
    family: &'static str,
    n: usize,
    edges: usize,
    /// Serialized size of one mid-run frame.
    frame_bytes: usize,
    plain_rounds_per_sec: f64,
    /// With `checkpoint_every(1)` — a full frame captured every round,
    /// the worst-case cadence.
    checkpointed_rounds_per_sec: f64,
    /// plain / checkpointed; what `--max-snapshot-overhead` bounds.
    overhead: f64,
    /// `Snapshot::to_bytes` frames/sec over the captured frames.
    write_frames_per_sec: f64,
    /// `Snapshot::from_bytes` frames/sec over the serialized frames.
    restore_frames_per_sec: f64,
    /// Rounds/sec of the remainder when resuming a mid-run frame.
    resume_rounds_per_sec: f64,
}

/// Collects checkpoint frames off a benchmark run.
#[derive(Default)]
struct KeepFrames {
    snaps: Vec<stoneage_sim::Snapshot>,
}

impl<S> stoneage_sim::Observer<S> for KeepFrames {
    fn on_checkpoint(&mut self, snapshot: &stoneage_sim::Snapshot) {
        self.snaps.push(snapshot.clone());
    }
}

/// Measures the checkpoint/resume layer against graph size: the
/// slowdown of an every-round checkpoint cadence over the plain sync
/// engine, the byte-level frame write/restore throughput, and the
/// throughput of a resumed remainder. Checkpointed and plain runs are
/// bit-identical (pinned by `crates/sim/tests/snapshot_resume.rs`);
/// only the capture cost differs.
fn snapshot_sweep(quick: bool, rounds: u64, reps: usize) -> Vec<SnapshotEntry> {
    let n: usize = if quick { 5_000 } else { 50_000 };
    let side = (n as f64).sqrt().ceil() as usize;
    let graphs: [(&'static str, Graph); 3] = [
        ("gnp", generators::gnp(n, 8.0 / n as f64, 7)),
        ("tree", generators::random_tree(n, 13)),
        ("grid", generators::grid(side, side)),
    ];
    let p = AsMulti(blinker());
    let mut entries = Vec::new();
    for (family, g) in &graphs {
        let nodes = g.node_count();
        eprintln!(
            "engine_bench[snapshot]: {family}(n = {nodes}), checkpoint_every(1) over \
             {rounds} rounds x {reps} reps"
        );
        let plain = measure(rounds, reps, || {
            Simulation::sync(&p, g)
                .seed(1)
                .budget(rounds)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });
        let checkpointed = measure(rounds, reps, || {
            let mut obs = KeepFrames::default();
            Simulation::sync(&p, g)
                .seed(1)
                .budget(rounds)
                .checkpoint_every(1)
                .observe(&mut obs)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });

        // One capture pass to get real frames for the byte-level and
        // resume measurements.
        let mut obs = KeepFrames::default();
        let _ = Simulation::sync(&p, g)
            .seed(1)
            .budget(rounds)
            .checkpoint_every(1)
            .observe(&mut obs)
            .run();
        let frames = obs.snaps;
        assert!(!frames.is_empty(), "cadence 1 must capture frames");

        let mut best_write = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for f in &frames {
                std::hint::black_box(f.to_bytes());
            }
            best_write = best_write.min(start.elapsed().as_secs_f64());
        }
        let serialized: Vec<Vec<u8>> = frames.iter().map(|f| f.to_bytes()).collect();
        let mut best_restore = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            for b in &serialized {
                std::hint::black_box(
                    stoneage_sim::Snapshot::from_bytes(b).expect("round-trip parses"),
                );
            }
            best_restore = best_restore.min(start.elapsed().as_secs_f64());
        }

        let snap = &frames[frames.len() / 2];
        let remaining = rounds - snap.boundary();
        let resume = measure(remaining, reps, || {
            Simulation::sync(&p, g)
                .seed(1)
                .budget(rounds)
                .resume_from(snap)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });

        let entry = SnapshotEntry {
            family,
            n: nodes,
            edges: g.edge_count(),
            frame_bytes: snap.to_bytes().len(),
            plain_rounds_per_sec: plain,
            checkpointed_rounds_per_sec: checkpointed,
            overhead: plain / checkpointed,
            write_frames_per_sec: frames.len() as f64 / best_write,
            restore_frames_per_sec: serialized.len() as f64 / best_restore,
            resume_rounds_per_sec: resume,
        };
        eprintln!(
            "  {family}: plain {:>8.1} r/s, checkpointed {:>8.1} r/s ({:.2}x overhead), \
             frame {} B, write {:.0} f/s, restore {:.0} f/s, resume {:>8.1} r/s",
            entry.plain_rounds_per_sec,
            entry.checkpointed_rounds_per_sec,
            entry.overhead,
            entry.frame_bytes,
            entry.write_frames_per_sec,
            entry.restore_frames_per_sec,
            entry.resume_rounds_per_sec
        );
        entries.push(entry);
    }
    entries
}

/// One faulted-vs-clean measurement of the delivery-boundary fault layer.
struct FaultEntry {
    family: &'static str,
    n: usize,
    edges: usize,
    clean_rounds_per_sec: f64,
    faulted_rounds_per_sec: f64,
    /// clean / faulted; what `--max-fault-overhead` bounds.
    overhead: f64,
}

/// Measures the sync engine with an active mixed `FaultPlan` (5% drops,
/// 3% single duplicates, 2% corrupts) against the fault-free engine on
/// the same instances, per graph family. Fault decisions are positional
/// hashes of (plan stream, receiver slot, round) evaluated at the
/// delivery boundary, so the cost is one hash chain per delivery — the
/// overhead this sweep records and `--max-fault-overhead` bounds.
fn fault_sweep(quick: bool, rounds: u64, reps: usize) -> Vec<FaultEntry> {
    let n: usize = if quick { 5_000 } else { 50_000 };
    let side = (n as f64).sqrt().ceil() as usize;
    let graphs: [(&'static str, Graph); 3] = [
        ("gnp", generators::gnp(n, 8.0 / n as f64, 7)),
        ("tree", generators::random_tree(n, 13)),
        ("grid", generators::grid(side, side)),
    ];
    let p = AsMulti(blinker());
    let plan = FaultPlan::new(17)
        .drop_rate(0.05)
        .duplicate_rate(0.03, 1)
        .corrupt_rate(0.02, Letter(0));
    let mut entries = Vec::new();
    for (family, g) in &graphs {
        let nodes = g.node_count();
        eprintln!(
            "engine_bench[faults]: {family}(n = {nodes}), mixed 10% fault plan over \
             {rounds} rounds x {reps} reps, faulted vs clean"
        );
        let clean = measure(rounds, reps, || {
            Simulation::sync(&p, g)
                .seed(1)
                .budget(rounds)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });
        let faulted = measure(rounds, reps, || {
            Simulation::sync(&p, g)
                .seed(1)
                .budget(rounds)
                .with_faults(&plan)
                .run()
                .map(|o| o.into_sync_outcome().expect("sync backend"))
        });
        let entry = FaultEntry {
            family,
            n: nodes,
            edges: g.edge_count(),
            clean_rounds_per_sec: clean,
            faulted_rounds_per_sec: faulted,
            overhead: clean / faulted,
        };
        eprintln!(
            "  {family}: clean {:>8.1} r/s, faulted {:>8.1} r/s ({:.2}x overhead)",
            entry.clean_rounds_per_sec, entry.faulted_rounds_per_sec, entry.overhead
        );
        entries.push(entry);
    }
    entries
}

fn topology_event_json(ev: &TopologyEvent) -> Value {
    let (kind, a, b) = match *ev {
        TopologyEvent::Crash(v) => ("crash", v as u64, None),
        TopologyEvent::Restart(v) => ("restart", v as u64, None),
        TopologyEvent::EdgeInsert(u, v) => ("edge_insert", u as u64, Some(v as u64)),
        TopologyEvent::EdgeDelete(u, v) => ("edge_delete", u as u64, Some(v as u64)),
    };
    let mut fields = vec![
        ("kind".to_owned(), kind.into()),
        ("node".to_owned(), a.into()),
    ];
    if let Some(b) = b {
        fields.push(("other".to_owned(), b.into()));
    }
    Value::Object(fields)
}

/// Renders stabilization records; an event the run never re-stabilized
/// from reports `"wedged": true` rather than a bare null, so snapshot
/// diffs surface wedges by name.
fn stabilization_records_array(records: &[stoneage_sim::StabilizationRecord]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("at_round".to_owned(), r.at_round.into()),
                    ("event".to_owned(), topology_event_json(&r.event)),
                ];
                match r.restabilized_after {
                    Some(d) => fields.push(("restabilized_after".to_owned(), d.into())),
                    None => fields.push(("wedged".to_owned(), Value::Bool(true))),
                }
                Value::Object(fields)
            })
            .collect(),
    )
}

fn stabilization_records_json(records: &[stoneage_sim::StabilizationRecord], rounds: u64) -> Value {
    Value::Object(vec![
        ("rounds_to_terminate".to_owned(), rounds.into()),
        ("records".to_owned(), stabilization_records_array(records)),
    ])
}

/// The paper's MIS vs its self-stabilizing wake-up-broadcast variant
/// under the schedule that wedges the former: a leaf of a star crashes
/// mid-tournament and restarts long after every survivor has decided
/// and halted. The restarted paper-MIS node re-reads the halted ports'
/// initial letters forever and never decides (the run hits its round
/// budget with `wedged: true`); `SelfStabMis` decided nodes re-announce
/// their letter on observing a wake-up and the restarted node decides a
/// few rounds after the restart. Both runs also carry an active
/// message-fault plan (duplicates-only — observably idempotent on
/// lockstep ports, so it perturbs nothing while proving the churn ×
/// faults composition injects), composing topology and channel faults
/// in one schedule.
fn mis_restart_recovery_json() -> Value {
    use stoneage_protocols::{stabilization, MisProtocol, SelfStabMis};
    let g = generators::star(32);
    let plan = ChurnPlan::new()
        .at(2, TopologyEvent::Crash(2))
        .at(90, TopologyEvent::Restart(2));
    let fplan = FaultPlan::new(31).duplicate_rate(0.05, 1);
    let budget = 2_000u64;

    let paper_json = {
        let p = MisProtocol::new();
        let mut obs = StabilizationObserver::new(&g, &plan, stabilization::mis_stabilized)
            .expect("valid plan");
        let res = Simulation::sync(&p, &g)
            .seed(5)
            .budget(budget)
            .with_churn(&plan)
            .with_faults(&fplan)
            .observe(&mut obs)
            .run();
        let rounds = match &res {
            Ok(o) => o.rounds().map(Value::from).unwrap_or(Value::Null),
            Err(ExecError::RoundLimit { .. }) => Value::Null,
            Err(other) => panic!("paper MIS under restart: unexpected {other:?}"),
        };
        Value::Object(vec![
            ("terminated".to_owned(), Value::Bool(res.is_ok())),
            ("rounds_to_terminate".to_owned(), rounds),
            ("wedged".to_owned(), Value::Bool(obs.wedged())),
            (
                "records".to_owned(),
                stabilization_records_array(obs.records()),
            ),
        ])
    };

    let selfstab_json = {
        let p = SelfStabMis::new();
        let mut obs = StabilizationObserver::new(&g, &plan, stabilization::mis_stabilized)
            .expect("valid plan");
        let outcome = Simulation::sync(&p, &g)
            .seed(5)
            .budget(budget)
            .with_churn(&plan)
            .with_faults(&fplan)
            .observe(&mut obs)
            .run()
            .expect("selfstab MIS recovers from the restart");
        Value::Object(vec![
            ("terminated".to_owned(), Value::Bool(true)),
            (
                "rounds_to_terminate".to_owned(),
                outcome.rounds().expect("sync outcome").into(),
            ),
            ("wedged".to_owned(), Value::Bool(obs.wedged())),
            (
                "faults_injected".to_owned(),
                outcome.faults().map(|f| f.injected()).unwrap_or(0).into(),
            ),
            (
                "records".to_owned(),
                stabilization_records_array(obs.records()),
            ),
        ])
    };

    Value::Object(vec![
        (
            "note".to_owned(),
            "star(32), leaf 2 crashes at round 2 and restarts at round 90, after every \
             survivor has decided and halted, under an active duplicates-only FaultPlan; \
             the paper protocol wedges, the selfstab wake-up-broadcast variant \
             re-stabilizes"
                .into(),
        ),
        ("paper".to_owned(), paper_json),
        ("selfstab".to_owned(), selfstab_json),
    ])
}

/// Re-stabilization measurements: each of the paper's protocols runs
/// under a small crash / edge-churn schedule with a
/// [`StabilizationObserver`] watching its correctness predicate over
/// the live subgraph; the records give rounds-to-re-stabilize per event.
/// Fixed small instances — this is an experiment record, not a
/// throughput measurement.
///
/// Event choice matters: the paper's lockstep protocols are *not*
/// self-stabilizing, and a restarted node whose decided neighbors have
/// halted re-reads their ports as the initial letter σ₀ forever — MIS
/// wedges in `UP0` (delayed by a phantom `DOWN1`) and the tree coloring
/// can decide a conflicting color. Crashes and edge churn are absorbed
/// (letter retirement only *clears* delay conditions), so MIS and
/// coloring get crash/edge schedules; the request/response-shaped
/// matching protocol genuinely recovers from a post-stabilization
/// restart, so its schedule demonstrates one.
fn stabilization_section() -> Value {
    use stoneage_protocols::{stabilization, ColoringProtocol, MatchingProtocol, MisProtocol};

    // MIS on a gnp instance: crash two nodes mid-tournament; the
    // survivors re-run the affected neighborhoods.
    let mis_json = {
        let g = generators::gnp(400, 8.0 / 400.0, 7);
        let plan = ChurnPlan::new()
            .at(3, TopologyEvent::Crash(5))
            .at(20, TopologyEvent::Crash(11));
        let p = MisProtocol::new();
        let mut obs = StabilizationObserver::new(&g, &plan, stabilization::mis_stabilized)
            .expect("valid plan");
        let outcome = Simulation::sync(&p, &g)
            .seed(2)
            .with_churn(&plan)
            .observe(&mut obs)
            .run()
            .expect("MIS terminates under churn");
        stabilization_records_json(obs.records(), outcome.rounds().unwrap())
    };

    // Tree 3-coloring: crash a node mid-run, then delete and re-insert a
    // tree edge after natural stabilization (~round 68) — the engine
    // keeps stepping until the last scheduled event has been applied.
    let coloring_json = {
        let g = generators::random_tree(300, 13);
        let (u, v) = g.edges().next().expect("tree has edges");
        let plan = ChurnPlan::new()
            .at(6, TopologyEvent::Crash(7))
            .at(72, TopologyEvent::EdgeDelete(u, v))
            .at(80, TopologyEvent::EdgeInsert(u, v));
        let p = ColoringProtocol::new();
        let mut obs = StabilizationObserver::new(&g, &plan, stabilization::coloring_stabilized)
            .expect("valid plan");
        let outcome = Simulation::sync(&p, &g)
            .seed(3)
            .with_churn(&plan)
            .observe(&mut obs)
            .run()
            .expect("coloring terminates under churn");
        stabilization_records_json(obs.records(), outcome.rounds().unwrap())
    };

    // Maximal matching on the scoped backend: crash a node after the
    // matching stabilizes (~round 34), then restart it — the restarted
    // node re-runs its proposal handshake against live neighbors and the
    // predicate is re-satisfied within a few rounds.
    let matching_json = {
        let g = generators::gnp(300, 8.0 / 300.0, 9);
        let plan = ChurnPlan::new()
            .at(40, TopologyEvent::Crash(4))
            .at(46, TopologyEvent::Restart(4));
        let p = MatchingProtocol::new();
        let mut obs = StabilizationObserver::new(&g, &plan, stabilization::matching_stabilized)
            .expect("valid plan");
        let outcome = Simulation::scoped(&p, &g)
            .seed(4)
            .with_churn(&plan)
            .observe(&mut obs)
            .run()
            .expect("matching terminates under churn");
        stabilization_records_json(obs.records(), outcome.rounds().unwrap())
    };

    Value::Object(vec![
        (
            "note".to_owned(),
            "rounds to re-satisfy the protocol's live-subgraph correctness predicate after \
             each topology event (wedged: true = never re-stabilized before termination)"
                .into(),
        ),
        ("mis".to_owned(), mis_json),
        ("coloring".to_owned(), coloring_json),
        ("matching".to_owned(), matching_json),
        (
            "mis_restart_recovery".to_owned(),
            mis_restart_recovery_json(),
        ),
    ])
}

struct AsyncEntry {
    family: &'static str,
    n: usize,
    edges: usize,
    heap_eps: f64,
    wheel_eps: f64,
    heap_rps: f64,
    wheel_rps: f64,
    speedup: f64,
}

fn async_sweep(quick: bool, reps: usize) -> (Vec<AsyncEntry>, u64) {
    let n: usize = if quick { 5_000 } else { 50_000 };
    let max_events: u64 = if quick { 400_000 } else { 4_000_000 };
    let avg_deg = 8.0;
    let side = (n as f64).sqrt().ceil() as usize;
    let graphs: [(&'static str, Graph); 3] = [
        ("gnp", generators::gnp(n, avg_deg / n as f64, 7)),
        ("tree", generators::random_tree(n, 13)),
        ("grid", generators::grid(side, side)),
    ];
    let mut entries = Vec::new();
    for (family, g) in graphs {
        let nodes = g.node_count();
        let edges = g.edge_count();
        eprintln!(
            "engine_bench[async]: {family}(n = {nodes}, |E| = {edges}), \
             {max_events} events x {reps} reps"
        );
        let (heap_eps, heap_unfinished) =
            measure_async(&g, SchedulerKind::BinaryHeap, max_events, reps);
        let (wheel_eps, wheel_unfinished) =
            measure_async(&g, SchedulerKind::CalendarWheel, max_events, reps);
        assert_eq!(
            heap_unfinished, wheel_unfinished,
            "schedulers reached different frontiers — bit-identity is broken"
        );
        // A blinker "round" is one step of every node plus its full
        // fan-out: n + 2|E| events. Deterministic given the topology, so
        // rounds/sec is comparable across schedulers and snapshots.
        let events_per_round = (nodes + 2 * edges) as f64;
        let entry = AsyncEntry {
            family,
            n: nodes,
            edges,
            heap_eps,
            wheel_eps,
            heap_rps: heap_eps / events_per_round,
            wheel_rps: wheel_eps / events_per_round,
            speedup: wheel_eps / heap_eps,
        };
        eprintln!(
            "  heap:  {:>12.0} events/sec ({:.1} rounds/sec)",
            entry.heap_eps, entry.heap_rps
        );
        eprintln!(
            "  wheel: {:>12.0} events/sec ({:.1} rounds/sec)",
            entry.wheel_eps, entry.wheel_rps
        );
        eprintln!("  speedup: {:.2}x", entry.speedup);
        entries.push(entry);
    }
    (entries, max_events)
}

struct ServerSweepEntry {
    jobs: usize,
    n: usize,
    direct_jobs_per_sec: f64,
    server_jobs_per_sec: f64,
    overhead: f64,
}

/// Submit-to-done throughput of the `stoneage-server` job orchestrator:
/// the same batch of small MIS jobs run directly through the
/// `Simulation` builder and end-to-end over loopback HTTP (submit →
/// poll to terminal). Both sides run one job at a time (the server gets
/// a one-core budget), so the ratio isolates orchestration overhead —
/// HTTP parse, spec validation, store and channel hops, thread spawn,
/// status polling — which the `--max-server-overhead` gate bounds.
fn server_sweep(quick: bool) -> ServerSweepEntry {
    use stoneage_protocols::MisProtocol;
    use stoneage_server::{client, Server, ServerConfig};

    let jobs = if quick { 8 } else { 24 };
    let n = 512usize;
    let p = 8.0 / n as f64;
    eprintln!("engine_bench[server]: {jobs} MIS jobs on gnp(n = {n}) direct vs over HTTP");

    // Direct: graph build + run per job, like the server's runner does.
    let protocol = MisProtocol::new();
    let start = Instant::now();
    for i in 0..jobs {
        let g = generators::gnp(n, p, 5);
        Simulation::sync(&protocol, &g)
            .seed(i as u64 + 1)
            .budget(100_000)
            .run()
            .expect("the MIS protocol terminates");
    }
    let direct_jobs_per_sec = jobs as f64 / start.elapsed().as_secs_f64();

    let server = Server::start(ServerConfig {
        cores: 1,
        max_jobs: jobs + 4,
        jobs_dir: None,
        ..ServerConfig::default()
    })
    .expect("bind loopback");
    let addr = server.addr().to_string();
    let start = Instant::now();
    let ids: Vec<i64> = (0..jobs)
        .map(|i| {
            let spec = format!(
                r#"{{"graph": {{"family": "gnp", "n": {n}, "p": {p}, "seed": 5}},
                    "protocol": "mis", "seeds": [{}]}}"#,
                i as u64 + 1
            );
            let resp =
                client::request(&addr, "POST", "/jobs", spec.as_bytes()).expect("submit job");
            assert_eq!(resp.status, 201, "submit refused");
            resp.json()["id"].as_i64().expect("job id")
        })
        .collect();
    for id in ids {
        loop {
            let doc = client::request(&addr, "GET", &format!("/jobs/{id}"), &[])
                .expect("job status")
                .json();
            match doc["state"].as_str() {
                Some("done") => break,
                Some("failed") | Some("cancelled") => {
                    panic!("server job {id} did not finish: {doc}")
                }
                _ => std::thread::sleep(std::time::Duration::from_micros(200)),
            }
        }
    }
    let server_jobs_per_sec = jobs as f64 / start.elapsed().as_secs_f64();
    server.shutdown();

    let entry = ServerSweepEntry {
        jobs,
        n,
        direct_jobs_per_sec,
        server_jobs_per_sec,
        overhead: direct_jobs_per_sec / server_jobs_per_sec,
    };
    eprintln!("  direct: {:>8.1} jobs/sec", entry.direct_jobs_per_sec);
    eprintln!("  server: {:>8.1} jobs/sec", entry.server_jobs_per_sec);
    eprintln!("  overhead: {:.2}x", entry.overhead);
    entry
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_engine.json".to_owned();
    let mut n = 50_000usize;
    let mut quick = false;
    let mut min_async_speedup: Option<f64> = None;
    let mut min_parallel_speedup: Option<f64> = None;
    let mut min_fused_speedup: Option<f64> = None;
    let mut min_steal_speedup: Option<f64> = None;
    let mut min_churn_patch_speedup: Option<f64> = None;
    let mut max_snapshot_overhead: Option<f64> = None;
    let mut max_fault_overhead: Option<f64> = None;
    let mut max_server_overhead: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                n = 5_000;
                quick = true;
            }
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--min-async-speedup" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--min-async-speedup needs a ratio")
                    .parse::<f64>()
                    .expect("--min-async-speedup needs a number");
                min_async_speedup = Some(v);
            }
            "--min-parallel-speedup" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--min-parallel-speedup needs a ratio")
                    .parse::<f64>()
                    .expect("--min-parallel-speedup needs a number");
                if cfg!(not(feature = "parallel")) {
                    eprintln!(
                        "--min-parallel-speedup requires a `--features parallel` build \
                         of stoneage-bench"
                    );
                    std::process::exit(2);
                }
                min_parallel_speedup = Some(v);
            }
            "--min-fused-speedup" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--min-fused-speedup needs a ratio")
                    .parse::<f64>()
                    .expect("--min-fused-speedup needs a number");
                if cfg!(not(feature = "parallel")) {
                    eprintln!(
                        "--min-fused-speedup requires a `--features parallel` build \
                         of stoneage-bench"
                    );
                    std::process::exit(2);
                }
                min_fused_speedup = Some(v);
            }
            "--min-steal-speedup" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--min-steal-speedup needs a ratio")
                    .parse::<f64>()
                    .expect("--min-steal-speedup needs a number");
                if cfg!(not(feature = "parallel")) {
                    eprintln!(
                        "--min-steal-speedup requires a `--features parallel` build \
                         of stoneage-bench"
                    );
                    std::process::exit(2);
                }
                min_steal_speedup = Some(v);
            }
            "--min-churn-patch-speedup" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--min-churn-patch-speedup needs a ratio")
                    .parse::<f64>()
                    .expect("--min-churn-patch-speedup needs a number");
                min_churn_patch_speedup = Some(v);
            }
            "--max-snapshot-overhead" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--max-snapshot-overhead needs a ratio")
                    .parse::<f64>()
                    .expect("--max-snapshot-overhead needs a number");
                max_snapshot_overhead = Some(v);
            }
            "--max-fault-overhead" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--max-fault-overhead needs a ratio")
                    .parse::<f64>()
                    .expect("--max-fault-overhead needs a number");
                max_fault_overhead = Some(v);
            }
            "--max-server-overhead" => {
                i += 1;
                let v = args
                    .get(i)
                    .expect("--max-server-overhead needs a ratio")
                    .parse::<f64>()
                    .expect("--max-server-overhead needs a number");
                max_server_overhead = Some(v);
            }
            other => {
                eprintln!(
                    "unknown flag {other}; usage: engine_bench [--quick] [--out path] \
                     [--min-async-speedup ratio] [--min-parallel-speedup ratio] \
                     [--min-fused-speedup ratio] [--min-steal-speedup ratio] \
                     [--min-churn-patch-speedup ratio] \
                     [--max-snapshot-overhead ratio] [--max-fault-overhead ratio] \
                     [--max-server-overhead ratio]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let avg_deg = 8.0;
    let rounds = 20u64;
    let reps = 5usize;
    let g = generators::gnp(n, avg_deg / n as f64, 7);
    let p = AsMulti(blinker());
    let config = SyncConfig {
        seed: 1,
        max_rounds: rounds,
    };

    eprintln!(
        "engine_bench: gnp(n = {n}, avg deg {avg_deg}), |E| = {}, {rounds} rounds x {reps} reps",
        g.edge_count()
    );
    let reference = measure(rounds, reps, || run_sync_reference(&p, &g, &config));
    eprintln!("  reference: {reference:.1} rounds/sec");
    let flat = measure(rounds, reps, || {
        Simulation::sync(&p, &g)
            .seed(config.seed)
            .budget(config.max_rounds)
            .run()
            .map(|o| o.into_sync_outcome().expect("sync backend"))
    });
    eprintln!("  flat:      {flat:.1} rounds/sec");
    let speedup = flat / reference;
    eprintln!("  speedup:   {speedup:.2}x");

    #[cfg(feature = "parallel")]
    let (par_entries, workers_available) = {
        eprintln!("engine_bench[parallel]: serial vs parallel flat engine, same instance");
        parallel_sweep(&g, &config, rounds, reps, flat)
    };

    #[cfg(feature = "parallel")]
    let (pipeline_entries, _) = round_pipeline_sweep(quick, rounds, if quick { 3 } else { reps });

    #[cfg(feature = "parallel")]
    let (steal_entries, steal_hw) = steal_sweep(quick, rounds, if quick { 3 } else { reps });

    let (async_entries, async_events) = async_sweep(quick, if quick { 3 } else { reps });

    let churn_entries = churn_sweep(quick, rounds, if quick { 3 } else { reps });
    let snapshot_entries = snapshot_sweep(quick, rounds, if quick { 3 } else { reps });
    let fault_entries = fault_sweep(quick, rounds, if quick { 3 } else { reps });
    let server_entry = server_sweep(quick);
    eprintln!("engine_bench[stabilization]: recording re-stabilization rounds per event");
    let stabilization_json = stabilization_section();

    let async_json = Value::Object(vec![
        (
            "workload".to_owned(),
            "blinker broadcast to a fixed event budget".into(),
        ),
        ("adversary".to_owned(), "uniform".into()),
        ("max_events".to_owned(), async_events.into()),
        (
            "entries".to_owned(),
            Value::Array(
                async_entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("family".to_owned(), e.family.into()),
                            ("n".to_owned(), e.n.into()),
                            ("edges".to_owned(), e.edges.into()),
                            ("heap_events_per_sec".to_owned(), e.heap_eps.into()),
                            ("wheel_events_per_sec".to_owned(), e.wheel_eps.into()),
                            ("heap_rounds_per_sec".to_owned(), e.heap_rps.into()),
                            ("wheel_rounds_per_sec".to_owned(), e.wheel_rps.into()),
                            ("speedup".to_owned(), e.speedup.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);

    #[cfg(feature = "parallel")]
    let parallel_json = Value::Object(vec![
        (
            "workload".to_owned(),
            "blinker broadcast; parallel = chunked phase 1 + sharded phase-2 write buffers".into(),
        ),
        ("merge".to_owned(), "destination_sharded".into()),
        ("workers_available".to_owned(), workers_available.into()),
        (
            "default_policy_workers".to_owned(),
            stoneage_sim::ParallelPolicy::default()
                .resolve_workers()
                .into(),
        ),
        ("serial_rounds_per_sec".to_owned(), flat.into()),
        (
            "entries".to_owned(),
            Value::Array(
                par_entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("workers".to_owned(), e.workers.into()),
                            ("workers_used".to_owned(), e.workers_used.into()),
                            ("rounds_per_sec".to_owned(), e.rounds_per_sec.into()),
                            ("speedup".to_owned(), e.speedup.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    #[cfg(not(feature = "parallel"))]
    let parallel_json = Value::Object(vec![
        ("enabled".to_owned(), Value::Bool(false)),
        (
            "note".to_owned(),
            "build stoneage-bench with --features parallel to record the sweep".into(),
        ),
    ]);

    #[cfg(feature = "parallel")]
    let round_pipeline_json = Value::Object(vec![
        (
            "workload".to_owned(),
            "blinker broadcast; joined = two scope joins per round, fused = phase 2b deferred \
             onto per-worker plane shards (one join)"
                .into(),
        ),
        ("merge".to_owned(), "destination_sharded".into()),
        (
            "workers_available".to_owned(),
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
                .into(),
        ),
        (
            "entries".to_owned(),
            Value::Array(
                pipeline_entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("family".to_owned(), e.family.into()),
                            ("n".to_owned(), e.n.into()),
                            ("workers".to_owned(), e.workers.into()),
                            ("workers_used".to_owned(), e.workers_used.into()),
                            (
                                "joined_rounds_per_sec".to_owned(),
                                e.joined_rounds_per_sec.into(),
                            ),
                            (
                                "fused_rounds_per_sec".to_owned(),
                                e.fused_rounds_per_sec.into(),
                            ),
                            ("speedup".to_owned(), e.speedup.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    #[cfg(not(feature = "parallel"))]
    let round_pipeline_json = Value::Object(vec![
        ("enabled".to_owned(), Value::Bool(false)),
        (
            "note".to_owned(),
            "build stoneage-bench with --features parallel to record the sweep".into(),
        ),
    ]);

    #[cfg(feature = "parallel")]
    let steal_json = Value::Object(vec![
        (
            "workload".to_owned(),
            "randomized prober (uniform 3-way transition per node per round), so per-node \
             RNG cost dominates per-slot cost; static slot-balanced chunks vs work-stealing \
             chunk deques"
                .into(),
        ),
        ("merge".to_owned(), "destination_sharded".into()),
        ("workers_available".to_owned(), steal_hw.into()),
        (
            "entries".to_owned(),
            Value::Array(
                steal_entries
                    .iter()
                    .map(|e| {
                        Value::Object(vec![
                            ("family".to_owned(), e.family.into()),
                            ("skewed".to_owned(), Value::Bool(e.skewed)),
                            ("n".to_owned(), e.n.into()),
                            ("workers".to_owned(), e.workers.into()),
                            ("workers_used".to_owned(), e.workers_used.into()),
                            (
                                "static_rounds_per_sec".to_owned(),
                                e.static_rounds_per_sec.into(),
                            ),
                            (
                                "stealing_rounds_per_sec".to_owned(),
                                e.stealing_rounds_per_sec.into(),
                            ),
                            ("speedup".to_owned(), e.speedup.into()),
                            ("chunks_per_round".to_owned(), e.chunks_per_round.into()),
                            ("steals_observed".to_owned(), e.steals_observed.into()),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    #[cfg(not(feature = "parallel"))]
    let steal_json = Value::Object(vec![
        ("enabled".to_owned(), Value::Bool(false)),
        (
            "note".to_owned(),
            "build stoneage-bench with --features parallel to record the sweep".into(),
        ),
    ]);

    let json = Value::Object(vec![
        ("bench".to_owned(), "engine_throughput".into()),
        // Absolute throughputs are host-dependent; recording the CPU
        // count keeps cross-snapshot comparisons interpretable (e.g. a
        // 1-CPU container cannot show parallel speedups).
        (
            "host_cpus".to_owned(),
            std::thread::available_parallelism()
                .map(|t| t.get())
                .unwrap_or(1)
                .into(),
        ),
        (
            "workload".to_owned(),
            "blinker broadcast, every port overwritten per round".into(),
        ),
        (
            "graph".to_owned(),
            Value::Object(vec![
                ("family".to_owned(), "gnp".into()),
                ("n".to_owned(), n.into()),
                ("avg_degree".to_owned(), avg_deg.into()),
                ("edges".to_owned(), g.edge_count().into()),
                ("seed".to_owned(), 7u64.into()),
            ]),
        ),
        ("rounds_per_run".to_owned(), rounds.into()),
        ("reps".to_owned(), reps.into()),
        (
            "baseline_reference_rounds_per_sec".to_owned(),
            reference.into(),
        ),
        ("flat_rounds_per_sec".to_owned(), flat.into()),
        ("speedup".to_owned(), speedup.into()),
        ("parallel_sweep".to_owned(), parallel_json),
        ("round_pipeline".to_owned(), round_pipeline_json),
        ("steal_sweep".to_owned(), steal_json),
        ("async_sweep".to_owned(), async_json),
        (
            "churn_sweep".to_owned(),
            Value::Object(vec![
                (
                    "workload".to_owned(),
                    "blinker broadcast under a dense fault schedule (8 edge toggles + 1 \
                     crash/restart per round); incremental slot patching vs ChurnOracle \
                     full rebuild, bit-identical outcomes"
                        .into(),
                ),
                (
                    "entries".to_owned(),
                    Value::Array(
                        churn_entries
                            .iter()
                            .map(|e| {
                                Value::Object(vec![
                                    ("family".to_owned(), e.family.into()),
                                    ("n".to_owned(), e.n.into()),
                                    ("edges".to_owned(), e.edges.into()),
                                    ("events".to_owned(), e.events.into()),
                                    (
                                        "incremental_rounds_per_sec".to_owned(),
                                        e.incremental_rounds_per_sec.into(),
                                    ),
                                    (
                                        "rebuild_rounds_per_sec".to_owned(),
                                        e.rebuild_rounds_per_sec.into(),
                                    ),
                                    ("patch_speedup".to_owned(), e.patch_speedup.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("stabilization".to_owned(), stabilization_json),
            ]),
        ),
        (
            "snapshot_sweep".to_owned(),
            Value::Object(vec![
                (
                    "workload".to_owned(),
                    "blinker broadcast; checkpointed = a full Snapshot frame captured every \
                     round (checkpoint_every(1), the worst-case cadence), bit-identical to \
                     the plain run; write/restore = Snapshot::to_bytes / from_bytes over the \
                     captured frames; resume = throughput of the remainder after resume_from \
                     on a mid-run frame"
                        .into(),
                ),
                (
                    "entries".to_owned(),
                    Value::Array(
                        snapshot_entries
                            .iter()
                            .map(|e| {
                                Value::Object(vec![
                                    ("family".to_owned(), e.family.into()),
                                    ("n".to_owned(), e.n.into()),
                                    ("edges".to_owned(), e.edges.into()),
                                    ("frame_bytes".to_owned(), e.frame_bytes.into()),
                                    (
                                        "plain_rounds_per_sec".to_owned(),
                                        e.plain_rounds_per_sec.into(),
                                    ),
                                    (
                                        "checkpointed_rounds_per_sec".to_owned(),
                                        e.checkpointed_rounds_per_sec.into(),
                                    ),
                                    ("overhead".to_owned(), e.overhead.into()),
                                    (
                                        "write_frames_per_sec".to_owned(),
                                        e.write_frames_per_sec.into(),
                                    ),
                                    (
                                        "restore_frames_per_sec".to_owned(),
                                        e.restore_frames_per_sec.into(),
                                    ),
                                    (
                                        "resume_rounds_per_sec".to_owned(),
                                        e.resume_rounds_per_sec.into(),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "fault_sweep".to_owned(),
            Value::Object(vec![
                (
                    "workload".to_owned(),
                    "blinker broadcast under a mixed FaultPlan (5% drops, 3% single \
                     duplicates, 2% corrupts) applied at the delivery boundary; one \
                     positional hash chain per delivery, bit-identical across backends, \
                     worker counts, and round modes"
                        .into(),
                ),
                (
                    "entries".to_owned(),
                    Value::Array(
                        fault_entries
                            .iter()
                            .map(|e| {
                                Value::Object(vec![
                                    ("family".to_owned(), e.family.into()),
                                    ("n".to_owned(), e.n.into()),
                                    ("edges".to_owned(), e.edges.into()),
                                    (
                                        "clean_rounds_per_sec".to_owned(),
                                        e.clean_rounds_per_sec.into(),
                                    ),
                                    (
                                        "faulted_rounds_per_sec".to_owned(),
                                        e.faulted_rounds_per_sec.into(),
                                    ),
                                    ("overhead".to_owned(), e.overhead.into()),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "server_sweep".to_owned(),
            Value::Object(vec![
                (
                    "workload".to_owned(),
                    "small MIS jobs, submit-to-done over loopback HTTP vs direct builder \
                     runs, one core each; overhead = direct / server jobs-per-sec"
                        .into(),
                ),
                ("jobs".to_owned(), server_entry.jobs.into()),
                ("n".to_owned(), server_entry.n.into()),
                (
                    "direct_jobs_per_sec".to_owned(),
                    server_entry.direct_jobs_per_sec.into(),
                ),
                (
                    "server_jobs_per_sec".to_owned(),
                    server_entry.server_jobs_per_sec.into(),
                ),
                ("overhead".to_owned(), server_entry.overhead.into()),
            ]),
        ),
    ]);
    let mut f = std::fs::File::create(&out_path).expect("create bench output");
    writeln!(f, "{}", json.to_string_pretty()).unwrap();
    eprintln!("wrote {out_path}");

    if let Some(min) = min_async_speedup {
        let mut failed = false;
        for e in &async_entries {
            if e.speedup < min {
                eprintln!(
                    "REGRESSION: async wheel at {:.2}x of heap on {} (required >= {min:.2}x)",
                    e.speedup, e.family
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("async wheel within budget: all families >= {min:.2}x of heap");
    }

    // The parallel gate enforces the speedup only at worker counts the
    // hardware can genuinely run in parallel (>= 4 workers, like the
    // acceptance target): on a narrower host the sweep is still recorded
    // but gating time-sliced threads would only measure the OS scheduler.
    #[cfg(feature = "parallel")]
    if let Some(min) = min_parallel_speedup {
        let gated: Vec<&ParEntry> = par_entries
            .iter()
            .filter(|e| e.workers >= 4 && e.workers <= workers_available)
            .collect();
        if gated.is_empty() {
            eprintln!(
                "parallel gate skipped: host has {workers_available} CPUs, \
                 need >= 4 workers to enforce >= {min:.2}x"
            );
        } else {
            let mut failed = false;
            for e in gated {
                if e.speedup < min {
                    eprintln!(
                        "REGRESSION: parallel engine at {:.2}x of serial with {} workers \
                         (required >= {min:.2}x)",
                        e.speedup, e.workers
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!(
                "parallel engine within budget: all gated worker counts >= {min:.2}x of serial"
            );
        }
    }
    // The fused gate mirrors the parallel gate: fused must hold its own
    // against joined only at worker counts with genuine hardware behind
    // them (a time-sliced "4 workers" on a 1-CPU host measures the OS
    // scheduler, not the dropped scope join).
    #[cfg(feature = "parallel")]
    if let Some(min) = min_fused_speedup {
        let hw = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1);
        let gated: Vec<&RoundPipelineEntry> = pipeline_entries
            .iter()
            .filter(|e| e.workers >= 4 && e.workers <= hw)
            .collect();
        if gated.is_empty() {
            eprintln!(
                "fused gate skipped: host has {hw} CPUs, need >= 4 workers to enforce >= \
                 {min:.2}x"
            );
        } else {
            let mut failed = false;
            for e in gated {
                if e.speedup < min {
                    eprintln!(
                        "REGRESSION: fused pipeline at {:.2}x of joined on {} with {} workers \
                         (required >= {min:.2}x)",
                        e.speedup, e.family, e.workers
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!("fused pipeline within budget: all gated entries >= {min:.2}x of joined");
        }
    }
    // The steal gate enforces the stealing scheduler's win only on the
    // skewed families (the uniform gnp control is recorded but stealing
    // has nothing to absorb there) and, like the parallel and fused
    // gates, only at worker counts with genuine hardware behind them.
    #[cfg(feature = "parallel")]
    if let Some(min) = min_steal_speedup {
        let gated: Vec<&StealEntry> = steal_entries
            .iter()
            .filter(|e| e.skewed && e.workers >= 4 && e.workers <= steal_hw)
            .collect();
        if gated.is_empty() {
            eprintln!(
                "steal gate skipped: host has {steal_hw} CPUs, need >= 4 workers to enforce \
                 >= {min:.2}x"
            );
        } else {
            let mut failed = false;
            for e in gated {
                if e.speedup < min {
                    eprintln!(
                        "REGRESSION: stealing scheduler at {:.2}x of static on {} with {} \
                         workers (required >= {min:.2}x)",
                        e.speedup, e.family, e.workers
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!(
                "stealing scheduler within budget: all gated skewed entries >= {min:.2}x \
                 of static"
            );
        }
    }
    // The churn gate self-skips on tiny instances: below ~20k nodes the
    // whole-store rebuild is cheap enough that the ratio mostly measures
    // allocator noise, not the patch path.
    if let Some(min) = min_churn_patch_speedup {
        let gated: Vec<&ChurnEntry> = churn_entries.iter().filter(|e| e.n >= 20_000).collect();
        if gated.is_empty() {
            eprintln!(
                "churn patch gate skipped: instances are below 20k nodes (use a full run, \
                 not --quick, to enforce >= {min:.2}x)"
            );
        } else {
            let mut failed = false;
            for e in gated {
                if e.patch_speedup < min {
                    eprintln!(
                        "REGRESSION: incremental churn patching at {:.2}x of rebuild on {} \
                         (required >= {min:.2}x)",
                        e.patch_speedup, e.family
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            eprintln!("churn patching within budget: all families >= {min:.2}x of rebuild");
        }
    }
    // The snapshot gate bounds the worst-case capture cost: an
    // every-round full-frame cadence may not slow the sync engine past
    // the given factor on any family. Real deployments checkpoint far
    // less often, so their overhead is a fraction of what this gate
    // enforces.
    if let Some(max) = max_snapshot_overhead {
        let mut failed = false;
        for e in &snapshot_entries {
            if e.overhead > max {
                eprintln!(
                    "REGRESSION: checkpoint_every(1) costs {:.2}x over the plain engine on {} \
                     (required <= {max:.2}x)",
                    e.overhead, e.family
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("snapshot capture within budget: all families <= {max:.2}x overhead");
    }
    // The fault gate bounds the per-delivery decision cost: an active
    // mixed plan may not slow the sync engine past the given factor on
    // any family. The layer is a straight hash chain per delivery, so a
    // regression here means the decision table walk or the duplicate
    // write path grew a hidden cost.
    if let Some(max) = max_fault_overhead {
        let mut failed = false;
        for e in &fault_entries {
            if e.overhead > max {
                eprintln!(
                    "REGRESSION: active FaultPlan costs {:.2}x over the clean engine on {} \
                     (required <= {max:.2}x)",
                    e.overhead, e.family
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("fault layer within budget: all families <= {max:.2}x overhead");
    }
    // The server gate bounds the end-to-end orchestration tax: HTTP,
    // validation, store, scheduler, and polling together may not slow a
    // batch of small jobs past the given factor over direct builder
    // runs. Real jobs are bigger, so their relative overhead is smaller
    // than what this gate enforces.
    if let Some(max) = max_server_overhead {
        if server_entry.overhead > max {
            eprintln!(
                "REGRESSION: server submit-to-done costs {:.2}x over direct runs \
                 (required <= {max:.2}x)",
                server_entry.overhead
            );
            std::process::exit(1);
        }
        eprintln!(
            "server orchestration within budget: {:.2}x <= {max:.2}x overhead",
            server_entry.overhead
        );
    }
    #[cfg(not(feature = "parallel"))]
    let _ = (min_parallel_speedup, min_fused_speedup, min_steal_speedup);
}
