//! Emits the `BENCH_engine.json` perf-trajectory snapshot: rounds/sec of
//! the flat delivery engine vs the preserved naive reference executor on
//! gnp(50k, avg deg 8).
//!
//! ```text
//! engine_bench                      # writes BENCH_engine.json in the cwd
//! engine_bench --out path.json      # custom output path
//! engine_bench --quick              # CI-sized instance (n = 5k)
//! ```
//!
//! The workload is the same blinker protocol as `benches/engine.rs`:
//! every round every node broadcasts, every delivery flips its port's
//! letter, so both the reverse-port-map write path and the incremental
//! count maintenance run at full tilt. Each engine is measured over
//! several repetitions and the best (least-noise) repetition is reported.

use std::io::Write as _;
use std::time::Instant;

use stoneage_bench::json::Value;
use stoneage_core::{Alphabet, AsMulti, Letter, TableProtocol, TableProtocolBuilder, Transitions};
use stoneage_graph::generators;
use stoneage_sim::{run_sync, run_sync_reference, ExecError, SyncConfig, SyncOutcome};

fn blinker() -> TableProtocol {
    let alphabet = Alphabet::new(["a", "b"]);
    let mut builder = TableProtocolBuilder::new("blinker", alphabet, 1, Letter(0));
    let s0 = builder.add_state("s0", Letter(0));
    let s1 = builder.add_state("s1", Letter(1));
    builder.add_input_state(s0);
    builder.set_transition_all(s0, Transitions::det(s1, Some(Letter(0))));
    builder.set_transition_all(s1, Transitions::det(s0, Some(Letter(1))));
    builder.build().unwrap()
}

fn measure(rounds: u64, reps: usize, run: impl Fn() -> Result<SyncOutcome, ExecError>) -> f64 {
    // Warm-up.
    let _ = run();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let err = run().expect_err("blinker never terminates");
        assert!(matches!(err, ExecError::RoundLimit { .. }));
        best = best.min(start.elapsed().as_secs_f64());
    }
    rounds as f64 / best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_engine.json".to_owned();
    let mut n = 50_000usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => n = 5_000,
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            other => {
                eprintln!("unknown flag {other}; usage: engine_bench [--quick] [--out path]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let avg_deg = 8.0;
    let rounds = 20u64;
    let reps = 5usize;
    let g = generators::gnp(n, avg_deg / n as f64, 7);
    let p = AsMulti(blinker());
    let config = SyncConfig {
        seed: 1,
        max_rounds: rounds,
    };

    eprintln!(
        "engine_bench: gnp(n = {n}, avg deg {avg_deg}), |E| = {}, {rounds} rounds x {reps} reps",
        g.edge_count()
    );
    let reference = measure(rounds, reps, || run_sync_reference(&p, &g, &config));
    eprintln!("  reference: {reference:.1} rounds/sec");
    let flat = measure(rounds, reps, || run_sync(&p, &g, &config));
    eprintln!("  flat:      {flat:.1} rounds/sec");
    let speedup = flat / reference;
    eprintln!("  speedup:   {speedup:.2}x");

    let json = Value::Object(vec![
        ("bench".to_owned(), "engine_throughput".into()),
        (
            "workload".to_owned(),
            "blinker broadcast, every port overwritten per round".into(),
        ),
        (
            "graph".to_owned(),
            Value::Object(vec![
                ("family".to_owned(), "gnp".into()),
                ("n".to_owned(), n.into()),
                ("avg_degree".to_owned(), avg_deg.into()),
                ("edges".to_owned(), g.edge_count().into()),
                ("seed".to_owned(), 7u64.into()),
            ]),
        ),
        ("rounds_per_run".to_owned(), rounds.into()),
        ("reps".to_owned(), reps.into()),
        (
            "baseline_reference_rounds_per_sec".to_owned(),
            reference.into(),
        ),
        ("flat_rounds_per_sec".to_owned(), flat.into()),
        ("speedup".to_owned(), speedup.into()),
    ]);
    let mut f = std::fs::File::create(&out_path).expect("create bench output");
    writeln!(f, "{}", json.to_string_pretty()).unwrap();
    eprintln!("wrote {out_path}");
}
