//! Deterministic execution fingerprints, printed to stdout.
//!
//! Runs the fixed panel of synchronous and asynchronous cases that the
//! pinned tests in `crates/sim/tests/` guard — the case instances,
//! protocol builders, and hashes all come from `stoneage-testkit`, so
//! this bin and the test suites cannot drift apart — and prints one
//! `case scheduler seed fingerprint` line each. Two invocations must
//! emit byte-identical output — the CI `determinism` job runs this twice
//! and diffs; any divergence means an engine picked up nondeterminism
//! (time, address, or iteration-order dependence).
//!
//! Also the tool to re-derive the pinned constants after a *deliberate*
//! semantics change (`PINNED` in `crates/sim/tests/flat_engine.rs`,
//! `PINNED_ASYNC` in `crates/sim/tests/async_wheel.rs`).

use stoneage_sim::SchedulerKind;
use stoneage_testkit::{
    async_fingerprint, run_async_pinned, run_sync_pinned, sync_fingerprint, ASYNC_PINNED_CASES,
    SYNC_PINNED_CASES,
};

fn main() {
    // Synchronous pinned panel (mirrors tests/flat_engine.rs).
    for (name, seed) in SYNC_PINNED_CASES {
        let fp = sync_fingerprint(&run_sync_pinned(name, seed));
        println!("sync  {name:<12} -          seed={seed:<6} fp={fp:#018x}");
    }

    // Asynchronous pinned panel (mirrors tests/async_wheel.rs), on both
    // schedulers — the lines must agree pairwise and across runs.
    for (name, seed) in ASYNC_PINNED_CASES {
        for (label, scheduler) in [
            ("heap", SchedulerKind::BinaryHeap),
            ("wheel", SchedulerKind::CalendarWheel),
        ] {
            let fp = async_fingerprint(&run_async_pinned(name, seed, scheduler));
            println!("async {name:<12} {label:<9} seed={seed:<6} fp={fp:#018x}");
        }
    }
}
