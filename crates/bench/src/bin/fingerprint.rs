//! Deterministic execution fingerprints, printed to stdout.
//!
//! Runs a fixed panel of synchronous and asynchronous cases (the same
//! instances the pinned tests in `crates/sim/tests/` guard) and prints
//! one `case scheduler seed fingerprint` line each. Two invocations must
//! emit byte-identical output — the CI `determinism` job runs this twice
//! and diffs; any divergence means an engine picked up nondeterminism
//! (time, address, or iteration-order dependence).
//!
//! Also the tool to re-derive the pinned constants after a *deliberate*
//! semantics change (`PINNED` in `crates/sim/tests/flat_engine.rs`,
//! `PINNED_ASYNC` in `crates/sim/tests/async_wheel.rs`).

use stoneage_core::{
    Alphabet, AsMulti, Letter, Synchronized, TableProtocol, TableProtocolBuilder, Transitions,
};
use stoneage_graph::{generators, Graph};
use stoneage_sim::adversary::UniformRandom;
use stoneage_sim::{run_async, run_sync, AsyncConfig, AsyncOutcome, SchedulerKind, SyncConfig};

/// Deterministic protocol: beep at step 1, then output 1 + f_b(#beeps).
/// Must stay in lockstep with the copies in `crates/sim/tests/`.
fn count_neighbors(b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "quiet"]);
    let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(1));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=b {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    builder.build().unwrap()
}

/// Single-letter variant used by the synchronous pinned cases.
fn count_neighbors_sync(b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep"]);
    let mut builder = TableProtocolBuilder::new("count", alphabet, b, Letter(0));
    let start = builder.add_state("start", Letter(0));
    let listen = builder.add_state("listen", Letter(0));
    builder.add_input_state(start);
    builder.set_transition_all(start, Transitions::det(listen, Some(Letter(0))));
    for o in 0..=b {
        let out = builder.add_output_state(format!("out{o}"), Letter(0), 1 + o as u64);
        builder.set_transition(listen, o, Transitions::det(out, None));
        builder.set_transition_all(out, Transitions::det(out, None));
    }
    builder.build().unwrap()
}

fn random_beeper(phases: usize, b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "idle"]);
    let mut builder = TableProtocolBuilder::new("rbeep", alphabet, b, Letter(1));
    let states: Vec<_> = (0..phases)
        .map(|i| builder.add_state(format!("r{i}"), Letter(0)))
        .collect();
    builder.add_input_state(states[0]);
    for i in 0..phases {
        if i + 1 < phases {
            let next = states[i + 1];
            builder.set_transition_all(
                states[i],
                Transitions::uniform(vec![
                    (next, Some(Letter(0))),
                    (next, None),
                    (next, Some(Letter(1))),
                ]),
            );
        } else {
            for o in 0..=b {
                let out = builder.add_output_state(format!("out{o}"), Letter(0), o as u64);
                builder.set_transition(states[i], o, Transitions::det(out, None));
                builder.set_transition_all(out, Transitions::det(out, None));
            }
        }
    }
    builder.build().unwrap()
}

/// Randomized beeper over a single-letter alphabet (the synchronous
/// pinned cases' variant).
fn random_beeper_sync(phases: usize, b: u8) -> TableProtocol {
    let alphabet = Alphabet::new(["beep", "idle"]);
    let mut builder = TableProtocolBuilder::new("rbeep", alphabet, b, Letter(1));
    let states: Vec<_> = (0..phases)
        .map(|i| builder.add_state(format!("r{i}"), Letter(0)))
        .collect();
    builder.add_input_state(states[0]);
    for i in 0..phases {
        let next = if i + 1 < phases {
            states[i + 1]
        } else {
            states[i]
        };
        if i + 1 < phases {
            builder.set_transition_all(
                states[i],
                Transitions::uniform(vec![
                    (next, Some(Letter(0))),
                    (next, None),
                    (next, Some(Letter(1))),
                ]),
            );
        } else {
            for o in 0..=b {
                let out = builder.add_output_state(format!("out{o}"), Letter(0), o as u64);
                builder.set_transition(states[i], o, Transitions::det(out, None));
                builder.set_transition_all(out, Transitions::det(out, None));
            }
        }
    }
    builder.build().unwrap()
}

fn fnv1a(seed: u64, words: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed;
    for w in words {
        for byte in w.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

fn async_fingerprint(out: &AsyncOutcome) -> u64 {
    fnv1a(
        out.total_steps ^ (out.messages_sent << 16) ^ (out.deliveries << 32),
        out.outputs.iter().copied().chain([
            out.completion_time.to_bits(),
            out.time_unit.to_bits(),
            out.lost_overwrites,
        ]),
    )
}

fn async_case(name: &str) -> (Graph, Synchronized<TableProtocol>, u64) {
    match name {
        "gnp-async" => (
            generators::gnp(90, 0.07, 19),
            Synchronized::new(count_neighbors(2)),
            4,
        ),
        "tree-async" => (
            generators::random_tree(120, 23),
            Synchronized::new(random_beeper(4, 2)),
            5,
        ),
        "grid-async" => (
            generators::grid(9, 11),
            Synchronized::new(random_beeper(3, 3)),
            6,
        ),
        other => panic!("unknown async case {other}"),
    }
}

fn main() {
    // Synchronous pinned panel (mirrors tests/flat_engine.rs).
    let sync_cases: [(&str, u64); 6] = [
        ("gnp-count", 1),
        ("gnp-count2", 2),
        ("tree-rbeep", 1),
        ("tree-rbeep", 2),
        ("grid-rbeep", 7),
        ("grid-rbeep", 8),
    ];
    for (name, seed) in sync_cases {
        let out = match name {
            "gnp-count" => run_sync(
                &AsMulti(count_neighbors_sync(3)),
                &generators::gnp(120, 0.06, 9),
                &SyncConfig::seeded(seed),
            ),
            "gnp-count2" => run_sync(
                &AsMulti(count_neighbors_sync(2)),
                &generators::gnp(90, 0.1, 23),
                &SyncConfig::seeded(seed),
            ),
            "tree-rbeep" => run_sync(
                &AsMulti(random_beeper_sync(5, 2)),
                &generators::random_tree(150, 21),
                &SyncConfig::seeded(seed),
            ),
            "grid-rbeep" => run_sync(
                &AsMulti(random_beeper_sync(4, 3)),
                &generators::grid(10, 14),
                &SyncConfig::seeded(seed),
            ),
            other => panic!("unknown sync case {other}"),
        }
        .expect("pinned cases terminate");
        let fp = fnv1a(
            out.rounds ^ (out.messages_sent << 20),
            out.outputs.iter().copied(),
        );
        println!("sync  {name:<12} -          seed={seed:<6} fp={fp:#018x}");
    }

    // Asynchronous pinned panel (mirrors tests/async_wheel.rs), on both
    // schedulers — the lines must agree pairwise and across runs.
    let async_cases: [(&str, u64); 3] = [
        ("gnp-async", 4242),
        ("tree-async", 77),
        ("grid-async", 9000),
    ];
    for (name, seed) in async_cases {
        let (g, p, adv_seed) = async_case(name);
        let adv = UniformRandom { seed: adv_seed };
        for (label, scheduler) in [
            ("heap", SchedulerKind::BinaryHeap),
            ("wheel", SchedulerKind::CalendarWheel),
        ] {
            let out = run_async(
                &p,
                &g,
                &adv,
                &AsyncConfig::seeded(seed).with_scheduler(scheduler),
            )
            .expect("pinned cases terminate");
            let fp = async_fingerprint(&out);
            println!("async {name:<12} {label:<9} seed={seed:<6} fp={fp:#018x}");
        }
    }
}
