//! The experiment harness binary: regenerates every table/figure of
//! `EXPERIMENTS.md`.
//!
//! ```text
//! experiments                      # run everything at full scale
//! experiments --quick              # CI-sized sweeps
//! experiments --exp mis-scaling    # one experiment
//! experiments --exp fig1 --dot     # print Figure 1 as Graphviz
//! experiments --json results.json  # also dump machine-readable results
//! ```

use std::io::Write as _;

use stoneage_bench::experiments::{self, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut exp: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut dot = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--dot" => dot = true,
            "--exp" => {
                i += 1;
                exp = Some(args.get(i).expect("--exp needs a name").clone());
            }
            "--json" => {
                i += 1;
                json_path = Some(args.get(i).expect("--json needs a path").clone());
            }
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--quick] [--exp NAME] [--json PATH] [--dot]\n\
                     experiments: {}",
                    experiments::NAMES.join(", ")
                );
                return;
            }
            other => {
                eprintln!("unknown flag {other}; try --help");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if dot {
        print!("{}", experiments::mis_figure1_dot());
        return;
    }

    let tables = match &exp {
        Some(name) => match experiments::by_name(name, scale) {
            Some(t) => vec![t],
            None => {
                eprintln!(
                    "unknown experiment {name}; available: {}",
                    experiments::NAMES.join(", ")
                );
                std::process::exit(2);
            }
        },
        None => experiments::all(scale),
    };

    for t in &tables {
        println!("{}", t.render());
    }

    if let Some(path) = json_path {
        let json = stoneage_bench::json::Value::Array(tables.iter().map(|t| t.to_json()).collect());
        let mut f = std::fs::File::create(&path).expect("create json output");
        writeln!(f, "{}", json.to_string_pretty()).unwrap();
        eprintln!("wrote {path}");
    }
}
