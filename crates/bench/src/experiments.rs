#![allow(clippy::type_complexity)]

//! The fourteen experiments of `EXPERIMENTS.md` (E1–E14), each
//! regenerating one claim of the paper. The paper is a theory paper — its
//! "evaluation" is a set of theorems plus Figure 1 — so each experiment
//! reproduces the corresponding theorem's quantitative content
//! empirically; `EXPERIMENTS.md` records paper-vs-measured.

use stoneage_baselines::{beeping, cole_vishkin, luby, matching as mp_matching, metivier};
use stoneage_core::{AsMulti, MultiFsm, SingleLetter, Synchronized};
use stoneage_graph::{generators, validate, Graph};
use stoneage_lba::{machines, sweep, to_nfsm};
use stoneage_protocols::{
    decode_coloring, decode_mis,
    mis::analysis::MisObserver,
    wave::{wave_inputs, wave_protocol},
    ColoringProtocol, MisProtocol,
};
use stoneage_sim::adversary::standard_panel;
use stoneage_sim::{AsyncConfig, SyncConfig};
use stoneage_testkit::harness::{
    run_async, run_async_with_inputs, run_sync, run_sync_observed, run_sync_with_inputs,
};

use crate::report::Table;
use crate::stats::{correlation, mean, quantile};

/// Experiment scale: `Quick` for CI/tests, `Full` for the recorded runs.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Small sweeps, a few seconds total.
    Quick,
    /// The sweeps recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    fn mis_sizes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[16, 32, 64, 128, 256],
            Scale::Full => &[16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
        }
    }

    fn tree_sizes(self) -> &'static [usize] {
        match self {
            Scale::Quick => &[16, 64, 256, 1024],
            Scale::Full => &[16, 64, 256, 1024, 4096, 16384, 65536],
        }
    }

    fn reps(self) -> u64 {
        match self {
            Scale::Quick => 3,
            Scale::Full => 10,
        }
    }
}

fn log2(n: usize) -> f64 {
    (n as f64).log2()
}

/// The graph families of the MIS sweeps.
fn mis_family(name: &str, n: usize, seed: u64) -> Graph {
    match name {
        "gnp-deg8" => generators::gnp(n, (8.0 / n as f64).min(1.0), seed),
        "tree" => generators::random_tree(n, seed),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            generators::grid(side.max(2), side.max(2))
        }
        "regular4" => generators::random_regular(n, 4, seed),
        "unit-disk" => {
            generators::unit_disk(n, (8.0 / (n as f64 * std::f64::consts::PI)).sqrt(), seed)
        }
        other => panic!("unknown family {other}"),
    }
}

const MIS_FAMILIES: [&str; 5] = ["gnp-deg8", "tree", "grid", "regular4", "unit-disk"];

/// E1 (Figure 1): structural regeneration of the MIS transition function.
///
/// Every edge of the figure is *probed* through the implementation's `δ`
/// (not transcribed), so the table is a machine-checked rendering of our
/// protocol; the Graphviz form is available via [`mis_figure1_dot`].
pub fn e01_figure1() -> Table {
    use stoneage_core::ObsVec;
    use stoneage_protocols::MisState as S;
    let p = MisProtocol::new();
    let obs = |counts: [usize; 7]| ObsVec::from_counts(&counts, 1);
    let zero = obs([0; 7]);
    let mut t = Table::new(
        "E1",
        "Figure 1: the MIS transition function, probed from δ",
        &["state", "delayed by", "quiet neighborhood", "contested"],
    );
    for s in S::ALL {
        let delayers: Vec<String> = s
            .delaying_set()
            .iter()
            .map(|d| {
                // Verify: a single delaying letter pins the state silently.
                let mut c = [0usize; 7];
                c[d.letter().index()] = 1;
                let tr = p.delta(&s, &obs(c));
                assert_eq!(tr.choices, vec![(s, None)], "{s:?} delayed by {d:?}");
                format!("{d:?}")
            })
            .collect();
        let quiet = p
            .delta(&s, &zero)
            .choices
            .iter()
            .map(|(q, _)| format!("{q:?}"))
            .collect::<Vec<_>>()
            .join(" | ");
        let contested = match s {
            S::Down2 => {
                let mut c = [0usize; 7];
                c[S::Win.letter().index()] = 1;
                let tr = p.delta(&s, &obs(c));
                format!("hear WIN → {:?}", tr.choices[0].0)
            }
            S::Up0 | S::Up1 | S::Up2 => {
                let j = s.up_index().unwrap();
                let mut c = [0usize; 7];
                c[S::up(j + 1).letter().index()] = 1;
                let tr = p.delta(&s, &obs(c));
                format!("rival → {:?} | {:?}", tr.choices[0].0, tr.choices[1].0)
            }
            _ => "—".to_owned(),
        };
        t.row(vec![
            format!("{s:?}").into(),
            delayers.join(",").into(),
            quiet.into(),
            contested.into(),
        ]);
    }
    t.finding(
        "7 states, 7 letters, b = 1; every edge of the paper's Figure 1 verified by probing δ",
    );
    t.finding("DOT rendering: `experiments --exp fig1 --dot`");
    t
}

/// The Graphviz rendering of Figure 1 (probed from the implementation).
pub fn mis_figure1_dot() -> String {
    use std::fmt::Write as _;
    use stoneage_core::ObsVec;
    use stoneage_protocols::MisState as S;
    let p = MisProtocol::new();
    let obs = |counts: [usize; 7]| ObsVec::from_counts(&counts, 1);
    let mut out = String::from("digraph mis {\n  rankdir=LR;\n");
    for s in S::ALL {
        let shape = if s.is_active() {
            "circle"
        } else {
            "doublecircle"
        };
        writeln!(out, "  {s:?} [shape={shape}];").unwrap();
    }
    for s in S::ALL {
        if !s.is_active() {
            continue;
        }
        for (q, _) in p.delta(&s, &obs([0; 7])).choices {
            writeln!(out, "  {s:?} -> {q:?} [label=\"quiet\"];").unwrap();
        }
        if let Some(j) = s.up_index() {
            let mut c = [0usize; 7];
            c[S::up(j + 1).letter().index()] = 1;
            let tr = p.delta(&s, &obs(c));
            writeln!(
                out,
                "  {s:?} -> {:?} [label=\"rival,tails\"];",
                tr.choices[1].0
            )
            .unwrap();
        }
        if s == S::Down2 {
            let mut c = [0usize; 7];
            c[S::Win.letter().index()] = 1;
            let tr = p.delta(&s, &obs(c));
            writeln!(out, "  {s:?} -> {:?} [label=\"#WIN≥1\"];", tr.choices[0].0).unwrap();
        }
    }
    out.push_str("}\n");
    out
}

/// E2 (Theorem 4.5): MIS run-time scaling, `O(log² n)` sync rounds.
pub fn e02_mis_scaling(scale: Scale) -> Table {
    let mut t = Table::new(
        "E2",
        "MIS (Thm 4.5): rounds vs n, all outputs validated",
        &["family", "n", "mean rounds", "p95", "rounds/log²n", "valid"],
    );
    let mut worst_ratio: f64 = 0.0;
    for family in MIS_FAMILIES {
        for &n in scale.mis_sizes() {
            let mut rounds = Vec::new();
            let mut valid = 0usize;
            for seed in 0..scale.reps() {
                let g = mis_family(family, n, seed);
                let out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed * 97 + 1))
                    .expect("MIS terminates");
                if validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs)) {
                    valid += 1;
                }
                rounds.push(out.rounds as f64);
            }
            let ratio = mean(&rounds) / (log2(n) * log2(n));
            worst_ratio = worst_ratio.max(ratio);
            t.row(vec![
                family.into(),
                n.into(),
                mean(&rounds).into(),
                quantile(&rounds, 0.95).into(),
                ratio.into(),
                format!("{valid}/{}", scale.reps()).into(),
            ]);
        }
    }
    t.finding(format!(
        "rounds/log²n stays bounded (max {worst_ratio:.3}) — consistent with O(log² n)"
    ));
    t.finding("every terminal configuration was a maximal independent set");
    t
}

/// E3 (Lemmas 4.3/4.4): per-tournament edge decay and good-node edges.
pub fn e03_edge_decay(scale: Scale) -> Table {
    let mut t = Table::new(
        "E3",
        "edge decay per tournament (Lemma 4.3; paper bound E|E^{i+1}| < (35/36)|E^i|)",
        &["tournament i", "mean |E^i|", "mean ratio |E^{i+1}|/|E^i|"],
    );
    let n = match scale {
        Scale::Quick => 150,
        Scale::Full => 600,
    };
    let reps = scale.reps() * 2;
    let mut per_i: Vec<Vec<f64>> = Vec::new();
    let mut sizes: Vec<Vec<f64>> = Vec::new();
    let mut good_fracs = Vec::new();
    for seed in 0..reps {
        let g = generators::gnp(n, 8.0 / n as f64, seed);
        if g.edge_count() > 0 {
            good_fracs.push(validate::edges_on_good_mis_nodes(&g) as f64 / g.edge_count() as f64);
        }
        let mut obs = MisObserver::new(g.node_count());
        let inputs = vec![0usize; g.node_count()];
        run_sync_observed(
            &MisProtocol::new(),
            &g,
            &inputs,
            &SyncConfig::seeded(seed + 5),
            &mut obs,
        )
        .expect("MIS terminates");
        let counts = obs.edge_counts(&g);
        for (i, w) in counts.windows(2).enumerate() {
            if w[0] == 0 {
                break;
            }
            if per_i.len() <= i {
                per_i.push(Vec::new());
                sizes.push(Vec::new());
            }
            per_i[i].push(w[1] as f64 / w[0] as f64);
            sizes[i].push(w[0] as f64);
        }
    }
    let mut max_ratio: f64 = 0.0;
    for (i, (ratios, size)) in per_i.iter().zip(&sizes).enumerate() {
        let r = mean(ratios);
        if mean(size) >= 10.0 {
            max_ratio = max_ratio.max(r);
        }
        t.row(vec![(i + 1).into(), mean(size).into(), r.into()]);
    }
    t.finding(format!(
        "max mean decay ratio (tournaments with ≥10 edges): {max_ratio:.3} — well below the paper's 35/36 ≈ 0.972"
    ));
    t.finding(format!(
        "fraction of edges incident on good nodes (Lemma 4.4, bound > 0.5): min over instances {:.3}",
        good_fracs.iter().copied().fold(f64::MAX, f64::min)
    ));
    t
}

/// E4 (Section 4): tournament lengths follow `Geom(1/2) + 2`.
pub fn e04_tournaments(scale: Scale) -> Table {
    let mut t = Table::new(
        "E4",
        "tournament lengths X_v(i) vs Geom(1/2)+2 (Section 4)",
        &["length k", "observed fraction", "theory 2^-(k-2)"],
    );
    let n = match scale {
        Scale::Quick => 200,
        Scale::Full => 800,
    };
    let mut lengths = Vec::new();
    for seed in 0..scale.reps() {
        let g = generators::gnp(n, 8.0 / n as f64, seed + 31);
        let mut obs = MisObserver::new(g.node_count());
        let inputs = vec![0usize; g.node_count()];
        run_sync_observed(
            &MisProtocol::new(),
            &g,
            &inputs,
            &SyncConfig::seeded(seed),
            &mut obs,
        )
        .expect("MIS terminates");
        for v in 0..g.node_count() {
            lengths.extend(obs.tournament_lengths(v).iter().map(|&x| x as f64));
        }
    }
    let total = lengths.len() as f64;
    for k in 3..=9u32 {
        let observed = lengths.iter().filter(|&&x| x == k as f64).count() as f64 / total;
        let theory = 0.5f64.powi(k as i32 - 2);
        t.row(vec![(k as u64).into(), observed.into(), theory.into()]);
    }
    t.finding(format!(
        "mean length {:.3} (theory: E[Geom(1/2)+2] = 4); {} tournaments sampled",
        mean(&lengths),
        lengths.len()
    ));
    t
}

/// E5 (Theorem 5.4): tree 3-coloring scaling, `O(log n)` rounds.
pub fn e05_tree_coloring(scale: Scale) -> Table {
    let mut t = Table::new(
        "E5",
        "tree 3-coloring (Thm 5.4): rounds vs n, all outputs validated",
        &["family", "n", "mean rounds", "p95", "rounds/log n", "valid"],
    );
    let families: [(&str, fn(usize, u64) -> Graph); 4] = [
        ("random-tree", |n, s| generators::random_tree(n, s)),
        ("path", |n, _| generators::path(n)),
        ("binary", |n, _| generators::kary_tree(n, 2)),
        ("caterpillar", |n, _| generators::caterpillar(n / 4, 3)),
    ];
    let mut worst: f64 = 0.0;
    for (name, gen) in families {
        for &n in scale.tree_sizes() {
            let mut rounds = Vec::new();
            let mut valid = 0usize;
            for seed in 0..scale.reps() {
                let g = gen(n, seed);
                let out = run_sync(
                    &ColoringProtocol::new(),
                    &g,
                    &SyncConfig {
                        seed: seed * 13 + 3,
                        max_rounds: 10_000_000,
                    },
                )
                .expect("coloring terminates");
                if validate::is_proper_k_coloring(&g, &decode_coloring(&out.outputs), 3) {
                    valid += 1;
                }
                rounds.push(out.rounds as f64);
            }
            let ratio = mean(&rounds) / log2(n);
            worst = worst.max(ratio);
            t.row(vec![
                name.into(),
                n.into(),
                mean(&rounds).into(),
                quantile(&rounds, 0.95).into(),
                ratio.into(),
                format!("{valid}/{}", scale.reps()).into(),
            ]);
        }
    }
    t.finding(format!(
        "rounds/log n stays bounded (max {worst:.3}) — consistent with O(log n)"
    ));
    t.finding("every terminal configuration was a proper 3-coloring");
    t
}

/// E6 (Observation 5.2): at least a 1/5 fraction of tree nodes are good.
pub fn e06_good_nodes(scale: Scale) -> Table {
    let mut t = Table::new(
        "E6",
        "good tree nodes (Obs 5.2: fraction ≥ 1/5)",
        &["family", "n", "mean fraction", "min fraction"],
    );
    let families: [(&str, fn(usize, u64) -> Graph); 4] = [
        ("random-tree", |n, s| generators::random_tree(n, s)),
        ("path", |n, _| generators::path(n)),
        ("star", |n, _| generators::star(n)),
        ("caterpillar", |n, _| generators::caterpillar(n / 4, 3)),
    ];
    let mut global_min = f64::MAX;
    for (name, gen) in families {
        for &n in &[64usize, 256, 1024] {
            let fracs: Vec<f64> = (0..scale.reps() * 3)
                .map(|s| {
                    let g = gen(n, s);
                    validate::count_good_tree_nodes(&g) as f64 / g.node_count() as f64
                })
                .collect();
            let mn = fracs.iter().copied().fold(f64::MAX, f64::min);
            global_min = global_min.min(mn);
            t.row(vec![name.into(), n.into(), mean(&fracs).into(), mn.into()]);
        }
    }
    t.finding(format!(
        "minimum fraction observed: {global_min:.3} (bound: 0.200)"
    ));
    // Observation 5.3's consequence: |Ṽ^i| decays by a constant factor
    // per phase. Measure the mean per-phase ratio on random trees.
    let mut ratios = Vec::new();
    for seed in 0..scale.reps() {
        let n = 400;
        let g = generators::random_tree(n, seed + 41);
        let mut obs = stoneage_protocols::coloring::analysis::ColoringObserver::new(n);
        let inputs = vec![0usize; n];
        run_sync_observed(
            &ColoringProtocol::new(),
            &g,
            &inputs,
            &SyncConfig {
                seed,
                max_rounds: 1_000_000,
            },
            &mut obs,
        )
        .expect("coloring terminates");
        ratios.extend(obs.decay_ratios());
    }
    t.finding(format!(
        "Observation 5.3: mean per-phase decay of |Ṽ^i| on random trees: {:.3} (constant < 1 as claimed)",
        mean(&ratios)
    ));
    t
}

/// E7 (Theorem 3.1): the synchronizer's constant-factor overhead, plus
/// end-to-end validity of the full pipeline under asynchrony.
pub fn e07_synchronizer(scale: Scale) -> Table {
    let mut t = Table::new(
        "E7",
        "synchronizer (Thm 3.1): async time-units per simulated round",
        &[
            "subject",
            "adversary",
            "sync rounds",
            "async time",
            "time/round",
        ],
    );
    // Wave on a path: sync rounds are known exactly (ecc + 1).
    let n = match scale {
        Scale::Quick => 24,
        Scale::Full => 64,
    };
    let wave = wave_protocol();
    let sync_wave = Synchronized::new(wave.clone());
    let mut ratios = Vec::new();
    for (gname, g, src) in [
        ("path", generators::path(n), 0u32),
        ("tree", generators::random_tree(n, 3), 0),
        ("grid", generators::grid(6, n / 6), 0),
    ] {
        let inputs = wave_inputs(g.node_count(), &[src]);
        let sync_out =
            run_sync_with_inputs(&AsMulti(wave.clone()), &g, &inputs, &SyncConfig::seeded(0))
                .expect("wave terminates");
        for adv in standard_panel(11) {
            let out = run_async_with_inputs(&sync_wave, &g, &inputs, &adv, &AsyncConfig::seeded(5))
                .expect("synchronized wave terminates");
            assert!(out.outputs.iter().all(|&o| o == 1), "wave must cover");
            let per_round = out.normalized_time / sync_out.rounds as f64;
            ratios.push(per_round);
            t.row(vec![
                format!("wave/{gname}").into(),
                adv.name().into(),
                sync_out.rounds.into(),
                out.normalized_time.into(),
                per_round.into(),
            ]);
        }
    }
    // Full pipeline: MIS → single-letter → synchronizer → async.
    let g = generators::gnp(20, 0.2, 9);
    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    let sync_out = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(2)).unwrap();
    for adv in standard_panel(13).into_iter().take(3) {
        let out = run_async(&pipeline, &g, &adv, &AsyncConfig::seeded(2)).unwrap();
        assert!(
            validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs)),
            "async pipeline must yield an MIS under {}",
            adv.name()
        );
        t.row(vec![
            "mis-pipeline/gnp20".into(),
            adv.name().into(),
            sync_out.rounds.into(),
            out.normalized_time.into(),
            (out.normalized_time / sync_out.rounds as f64).into(),
        ]);
    }
    let sigma = stoneage_core::Protocol::alphabet(&wave).len();
    t.finding(format!(
        "wave overhead per simulated round: min {:.1}, max {:.1} time units — a constant governed by |Σ̂| = 3(|Σ|+1)² = {} (|Σ| = {sigma})",
        ratios.iter().copied().fold(f64::MAX, f64::min),
        ratios.iter().copied().fold(0.0f64, f64::max),
        sync_wave.alphabet_size(),
    ));
    t.finding("full MIS pipeline (Thm 3.4 ∘ Thm 3.1) correct under every adversary tested");
    t
}

/// E8 (Theorem 3.4): single-letterization is an exact ×|Σ| slowdown.
pub fn e08_multiq(scale: Scale) -> Table {
    let mut t = Table::new(
        "E8",
        "multi-letter elimination (Thm 3.4): exact ×|Σ| rounds, identical outputs",
        &[
            "graph",
            "direct rounds",
            "compiled rounds",
            "ratio",
            "outputs equal",
        ],
    );
    let reps = scale.reps().min(5);
    for (name, g) in [
        ("gnp32", generators::gnp(32, 0.15, 1)),
        ("cycle21", generators::cycle(21)),
        ("tree40", generators::random_tree(40, 2)),
    ] {
        for seed in 0..reps {
            let direct = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed)).unwrap();
            let compiled = run_sync(
                &AsMulti(SingleLetter::new(MisProtocol::new())),
                &g,
                &SyncConfig::seeded(seed),
            )
            .unwrap();
            let ratio = compiled.rounds as f64 / direct.rounds as f64;
            t.row(vec![
                name.into(),
                direct.rounds.into(),
                compiled.rounds.into(),
                ratio.into(),
                (compiled.outputs == direct.outputs).to_string().into(),
            ]);
            assert_eq!(compiled.outputs, direct.outputs);
            assert_eq!(compiled.rounds, direct.rounds * 7);
        }
    }
    t.finding("compiled protocol consumes the same coin flips: outputs are bit-identical, rounds exactly 7× (|Σ| = 7)");
    t
}

/// E9 (Lemma 6.1): the adjacency-list sweep rLBA simulation is exact.
pub fn e09_lba_sweep(scale: Scale) -> Table {
    let mut t = Table::new(
        "E9",
        "nFSM ≼ rLBA (Lemma 6.1): sweep simulation, exact equality + space",
        &[
            "graph",
            "rounds",
            "outputs equal",
            "tape cells (3n+4m)",
            "head moves",
        ],
    );
    let reps = scale.reps().min(4);
    for (name, g) in [
        ("gnp24", generators::gnp(24, 0.15, 3)),
        ("cycle15", generators::cycle(15)),
        ("tree20", generators::random_tree(20, 7)),
    ] {
        for seed in 0..reps {
            let native = run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed)).unwrap();
            let sweep = sweep::simulate_on_tape(
                &MisProtocol::new(),
                &g,
                &vec![0usize; g.node_count()],
                seed,
                1_000_000,
                |s| *s as u64,
                |c| stoneage_protocols::MisState::ALL[c as usize],
            )
            .expect("sweep terminates");
            assert_eq!(sweep.outputs, native.outputs);
            t.row(vec![
                name.into(),
                sweep.rounds.into(),
                (sweep.outputs == native.outputs).to_string().into(),
                sweep.tape_cells.into(),
                sweep.head_moves.into(),
            ]);
        }
    }
    t.finding("outputs and round counts bit-identical to the native engine; tape = exactly 3n + 4m cells (O(1) per node/edge)");
    t
}

/// E10 (Lemma 6.2): rLBA ≼ nFSM on a path.
pub fn e10_lba_to_nfsm(_scale: Scale) -> Table {
    let mut t = Table::new(
        "E10",
        "rLBA ≼ nFSM on a path (Lemma 6.2): verdict equality + cost",
        &[
            "machine",
            "input",
            "direct verdict",
            "path verdict",
            "machine steps",
            "path rounds",
        ],
    );
    let cases: [(&str, stoneage_lba::Lba, &[&str]); 4] = [
        (
            "aⁿbⁿcⁿ",
            machines::abc_equal(),
            &["", "abc", "aabbcc", "aabbc", "acb", "aaabbbccc"],
        ),
        (
            "palindrome",
            machines::palindrome(),
            &["abba", "ab", "aba", "abab"],
        ),
        (
            "majority",
            machines::majority(),
            &["aab", "ab", "bba", "aaabb"],
        ),
        ("len%3", machines::length_mod3(), &["", "aaa", "aaaa"]),
    ];
    for (name, m, words) in cases {
        for &w in words {
            let input = machines::encode_abc(w);
            let direct = m.run(&input, 0, 10_000_000).unwrap();
            let (verdict, rounds) =
                to_nfsm::run_on_path(&m, &input, 1, 10_000_000).expect("path run terminates");
            assert_eq!(verdict, direct.accepted, "{name} {w:?}");
            t.row(vec![
                name.into(),
                format!("{w:?}").into(),
                direct.accepted.to_string().into(),
                verdict.to_string().into(),
                direct.steps.into(),
                rounds.into(),
            ]);
        }
    }
    t.finding(
        "all verdicts agree; path rounds ≈ machine steps + flood (Θ(1) rounds per head move)",
    );
    t
}

/// E11: MIS round-complexity shapes across models.
pub fn e11_baseline_mis(scale: Scale) -> Table {
    let mut t = Table::new(
        "E11",
        "MIS across models on G(n, 8/n): nFSM O(log²n) vs Luby O(log n) vs beeping/bit models",
        &[
            "n",
            "nFSM rounds",
            "Luby rounds",
            "Métivier bit-rounds",
            "beeping slots",
        ],
    );
    let mut logs = Vec::new();
    let mut nfsm_norm = Vec::new();
    let mut luby_norm = Vec::new();
    for &n in scale.mis_sizes() {
        let (mut a, mut b, mut c, mut d) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
        for seed in 0..scale.reps() {
            let g = generators::gnp(n, (8.0 / n as f64).min(1.0), seed + 17);
            a.push(
                run_sync(&MisProtocol::new(), &g, &SyncConfig::seeded(seed))
                    .unwrap()
                    .rounds as f64,
            );
            b.push(luby::luby_mis(&g, seed).rounds as f64);
            c.push(metivier::metivier_mis(&g, seed).bit_rounds as f64);
            d.push(beeping::beeping_mis(&g, seed).slots as f64);
        }
        logs.push(log2(n));
        nfsm_norm.push(mean(&a));
        luby_norm.push(mean(&b));
        t.row(vec![
            n.into(),
            mean(&a).into(),
            mean(&b).into(),
            mean(&c).into(),
            mean(&d).into(),
        ]);
    }
    // Shape check: nFSM rounds correlate with log², Luby with log.
    let log2s: Vec<f64> = logs.iter().map(|l| l * l).collect();
    t.finding(format!(
        "correlation(nFSM rounds, log²n) = {:.3}; correlation(Luby rounds, log n) = {:.3}",
        correlation(&nfsm_norm, &log2s),
        correlation(&luby_norm, &logs)
    ));
    t.finding("who wins: Luby ≪ nFSM in rounds, as the models predict — the nFSM pays a log factor for constant-size machines");
    t
}

/// E12: tree 3-coloring shapes, nFSM `Θ(log n)` vs Cole–Vishkin `O(log* n)`.
pub fn e12_baseline_coloring(scale: Scale) -> Table {
    let mut t = Table::new(
        "E12",
        "3-coloring trees: nFSM (undirected, O(1) msgs) vs Cole–Vishkin (directed, log-bit ids)",
        &["family", "n", "nFSM rounds", "CV rounds"],
    );
    let mut nfsm_last = 0.0;
    let mut cv_last = 0.0;
    for (family, gen) in [
        (
            "path",
            (|n, _| generators::path(n)) as fn(usize, u64) -> Graph,
        ),
        ("random-tree", |n, s| generators::random_tree(n, s)),
    ] {
        for &n in scale.tree_sizes() {
            let mut nfsm = Vec::new();
            let mut cv = Vec::new();
            for seed in 0..scale.reps().min(5) {
                let g = gen(n, seed);
                nfsm.push(
                    run_sync(
                        &ColoringProtocol::new(),
                        &g,
                        &SyncConfig {
                            seed,
                            max_rounds: 10_000_000,
                        },
                    )
                    .unwrap()
                    .rounds as f64,
                );
                let run = cole_vishkin::cole_vishkin_3color(&g, 0);
                assert!(validate::is_proper_k_coloring(&g, &run.colors, 3));
                cv.push(run.rounds as f64);
            }
            nfsm_last = mean(&nfsm);
            cv_last = mean(&cv);
            t.row(vec![
                family.into(),
                n.into(),
                nfsm_last.into(),
                cv_last.into(),
            ]);
        }
    }
    t.finding(format!(
        "at the largest size: nFSM {nfsm_last:.0} rounds (grows ~log n) vs Cole–Vishkin {cv_last:.0} (log* n, essentially flat) — the price of O(1)-size messages, matching Kothapalli et al.'s Ω(log n) bound"
    ));
    t
}

/// E13: robustness of the asynchronous pipeline across adversaries.
pub fn e13_adversary(scale: Scale) -> Table {
    let mut t = Table::new(
        "E13",
        "adversary robustness: synchronized wave + MIS pipeline, normalized time units",
        &[
            "subject",
            "adversary",
            "normalized time",
            "messages",
            "lost overwrites",
            "valid",
        ],
    );
    let n = match scale {
        Scale::Quick => 20,
        Scale::Full => 48,
    };
    let g = generators::gnp(n, 3.0 / n as f64, 21);
    let wave = Synchronized::new(wave_protocol());
    let gw = generators::path(n);
    let inputs = wave_inputs(n, &[0]);
    for adv in standard_panel(3) {
        let out = run_async_with_inputs(&wave, &gw, &inputs, &adv, &AsyncConfig::seeded(1))
            .expect("wave terminates");
        t.row(vec![
            "wave/path".into(),
            adv.name().into(),
            out.normalized_time.into(),
            out.messages_sent.into(),
            out.lost_overwrites.into(),
            "true".into(),
        ]);
    }
    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    for adv in standard_panel(7) {
        let out =
            run_async(&pipeline, &g, &adv, &AsyncConfig::seeded(4)).expect("pipeline terminates");
        let valid = validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs));
        assert!(valid, "adversary {} broke the pipeline", adv.name());
        t.row(vec![
            "mis/gnp".into(),
            adv.name().into(),
            out.normalized_time.into(),
            out.messages_sent.into(),
            out.lost_overwrites.into(),
            valid.to_string().into(),
        ]);
    }
    t.finding("correct under every adversarial policy; normalized times vary by small constant factors only");
    t.finding("lost_overwrites > 0 under straggler policies: the no-buffer port semantics genuinely drops messages, and the synchronizer absorbs it");
    t
}

/// E14 (R8): maximal matching under the port-select extension.
pub fn e14_matching(scale: Scale) -> Table {
    let mut t = Table::new(
        "E14",
        "maximal matching: nFSM + port-select extension vs message passing",
        &["family", "n", "nFSM rounds", "msg-passing rounds", "valid"],
    );
    for (family, gen) in [
        (
            "gnp-deg6",
            (|n: usize, s: u64| generators::gnp(n, (6.0 / n as f64).min(1.0), s))
                as fn(usize, u64) -> Graph,
        ),
        ("tree", |n, s| generators::random_tree(n, s)),
    ] {
        for &n in scale.mis_sizes() {
            let mut ours = Vec::new();
            let mut mp = Vec::new();
            let mut valid = 0usize;
            for seed in 0..scale.reps() {
                let g = gen(n, seed + 29);
                let out = stoneage_protocols::run_matching(&g, seed, 10_000_000)
                    .expect("matching terminates");
                if validate::is_maximal_matching(&g, &out.matched) {
                    valid += 1;
                }
                ours.push(out.rounds as f64);
                mp.push(mp_matching::proposal_matching(&g, seed).rounds as f64);
            }
            t.row(vec![
                family.into(),
                n.into(),
                mean(&ours).into(),
                mean(&mp).into(),
                format!("{valid}/{}", scale.reps()).into(),
            ]);
        }
    }
    t.finding("both scale as O(log n) phases; the nFSM version pays a constant factor (4-round phases + coin-flip roles)");
    t.finding("every run produced a maximal matching (validated edge lists recovered from scoped deliveries)");
    t
}

/// All experiments in order.
pub fn all(scale: Scale) -> Vec<Table> {
    vec![
        e01_figure1(),
        e02_mis_scaling(scale),
        e03_edge_decay(scale),
        e04_tournaments(scale),
        e05_tree_coloring(scale),
        e06_good_nodes(scale),
        e07_synchronizer(scale),
        e08_multiq(scale),
        e09_lba_sweep(scale),
        e10_lba_to_nfsm(scale),
        e11_baseline_mis(scale),
        e12_baseline_coloring(scale),
        e13_adversary(scale),
        e14_matching(scale),
    ]
}

/// Experiment lookup by CLI name.
pub fn by_name(name: &str, scale: Scale) -> Option<Table> {
    Some(match name {
        "fig1" => e01_figure1(),
        "mis-scaling" => e02_mis_scaling(scale),
        "edge-decay" => e03_edge_decay(scale),
        "tournaments" => e04_tournaments(scale),
        "tree-coloring" => e05_tree_coloring(scale),
        "good-nodes" => e06_good_nodes(scale),
        "synchronizer" => e07_synchronizer(scale),
        "multiq" => e08_multiq(scale),
        "lba-sim" => e09_lba_sweep(scale),
        "lba-to-nfsm" => e10_lba_to_nfsm(scale),
        "baseline-mis" => e11_baseline_mis(scale),
        "baseline-coloring" => e12_baseline_coloring(scale),
        "adversary" => e13_adversary(scale),
        "matching" => e14_matching(scale),
        _ => return None,
    })
}

/// The CLI names accepted by [`by_name`].
pub const NAMES: [&str; 14] = [
    "fig1",
    "mis-scaling",
    "edge-decay",
    "tournaments",
    "tree-coloring",
    "good-nodes",
    "synchronizer",
    "multiq",
    "lba-sim",
    "lba-to-nfsm",
    "baseline-mis",
    "baseline-coloring",
    "adversary",
    "matching",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_probes_cleanly() {
        let t = e01_figure1();
        assert_eq!(t.rows.len(), 7);
        let dot = mis_figure1_dot();
        assert!(dot.contains("Down1"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn every_experiment_name_resolves() {
        // Names must be unique and well-formed; execution is covered by
        // the integration tests and the binary.
        let mut seen = std::collections::HashSet::new();
        for name in NAMES {
            assert!(!name.is_empty());
            assert!(seen.insert(name), "duplicate experiment name {name}");
        }
        assert!(by_name("nope", Scale::Quick).is_none());
    }

    #[test]
    fn quick_multiq_experiment_runs() {
        let t = e08_multiq(Scale::Quick);
        assert!(!t.rows.is_empty());
    }

    #[test]
    fn quick_good_nodes_respects_bound() {
        let t = e06_good_nodes(Scale::Quick);
        assert!(t.findings[0].contains("0.2") || t.findings[0].contains("minimum"));
    }
}
