//! Experiment harness for the *Stone Age Distributed Computing*
//! reproduction.
//!
//! Every experiment of `EXPERIMENTS.md` (E1–E14) is a function in
//! [`experiments`] that returns a structured [`report::Table`] — printable
//! as an aligned text table and serializable to JSON — so the
//! `experiments` binary, the criterion benches and the integration tests
//! all share one implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod json;
pub mod report;
pub mod stats;
