//! JSON value type for experiment reports.
//!
//! The implementation moved to the shared [`stoneage_wire`] crate when the
//! simulation server gained a JSON request API (the server needs the
//! matching strict parser, `stoneage_wire::parse`). This module stays as a
//! re-export so the harness's `stoneage_bench::json::Value` call sites —
//! and the report files they emit — are unchanged.

pub use stoneage_wire::Value;
