//! Small statistics helpers for the experiment tables.

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation; 0 for fewer than two samples.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Least-squares slope of `y` against `x` (simple linear regression).
pub fn slope(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let cov: f64 = x.iter().zip(y).map(|(a, b)| (a - mx) * (b - my)).sum();
    let var: f64 = x.iter().map(|a| (a - mx) * (a - mx)).sum();
    if var == 0.0 {
        0.0
    } else {
        cov / var
    }
}

/// Pearson correlation coefficient.
pub fn correlation(x: &[f64], y: &[f64]) -> f64 {
    let sx = stddev(x);
    let sy = stddev(y);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let cov: f64 = x
        .iter()
        .zip(y)
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / (x.len() - 1) as f64;
    cov / (sx * sy)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert!((stddev(&[2.0, 4.0]) - std::f64::consts::SQRT_2).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
    }

    #[test]
    fn regression_slope() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [3.0, 5.0, 7.0, 9.0];
        assert!((slope(&x, &y) - 2.0).abs() < 1e-12);
        assert!((correlation(&x, &y) - 1.0).abs() < 1e-12);
    }
}
