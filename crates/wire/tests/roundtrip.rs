//! Property tests pinning `parse ∘ emit = id` and malformed-input
//! rejection for the shared wire format.
//!
//! The generator covers every `Value` variant, nested containers, unicode
//! and control characters in strings, and the full finite `f64` range
//! (Rust's `{}` float formatting is shortest-round-trip, so exact
//! equality is the right assertion). Non-finite floats are excluded:
//! they deliberately serialize as `null`, which is not an identity.

use proptest::prelude::*;
use stoneage_wire::{parse, ErrorKind, Value};

/// SplitMix64 step — the test's own stream, independent of the shim's
/// per-test RNG so a value tree is a pure function of the sampled seed.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn arb_string(state: &mut u64) -> String {
    const POOL: &[char] = &[
        'a',
        'B',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1f}',
        'é',
        '→',
        '≤',
        '\u{1d11e}',
        '{',
        '}',
        '[',
        ']',
        ':',
        ',',
    ];
    let len = (mix(state) % 12) as usize;
    (0..len)
        .map(|_| POOL[(mix(state) as usize) % POOL.len()])
        .collect()
}

fn arb_float(state: &mut u64) -> f64 {
    loop {
        let f = match mix(state) % 4 {
            0 => (mix(state) as i64 % 1000) as f64 / 8.0,
            1 => f64::from_bits(mix(state)),
            2 => (mix(state) as i64) as f64 * 1e-30,
            _ => (mix(state) % 1_000_000) as f64 * 1e18,
        };
        if f.is_finite() {
            return f;
        }
    }
}

fn arb_value(state: &mut u64, depth: usize) -> Value {
    let pick = if depth >= 4 {
        mix(state) % 5
    } else {
        mix(state) % 7
    };
    match pick {
        0 => Value::Null,
        1 => Value::Bool(mix(state).is_multiple_of(2)),
        2 => Value::Int(mix(state) as i64),
        3 => Value::Float(arb_float(state)),
        4 => Value::Str(arb_string(state)),
        5 => {
            let len = (mix(state) % 4) as usize;
            Value::Array((0..len).map(|_| arb_value(state, depth + 1)).collect())
        }
        _ => {
            let len = (mix(state) % 4) as usize;
            Value::Object(
                (0..len)
                    .map(|i| {
                        // Unique-by-construction keys: the parser rejects
                        // duplicates by design.
                        (
                            format!("k{i}_{}", arb_string(state)),
                            arb_value(state, depth + 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parse_emit_roundtrip(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let v = arb_value(&mut state, 0);
        let text = v.to_string_pretty();
        let back = parse(&text).expect("emitter output must parse");
        prop_assert_eq!(back, v);
    }

    #[test]
    fn truncated_emitter_output_rejects(seed in 0u64..u64::MAX) {
        let mut state = seed;
        // Containers only, so the document is never a bare scalar whose
        // prefix is itself valid (e.g. "42" truncated to "4").
        let v = Value::Array(vec![arb_value(&mut state, 1), arb_value(&mut state, 1)]);
        let text = v.to_string_pretty();
        let cut = 1 + (mix(&mut state) as usize) % (text.len() - 1);
        if text.is_char_boundary(cut) {
            prop_assert!(parse(&text[..cut]).is_err());
        }
    }

    #[test]
    fn garbage_suffix_rejects(seed in 0u64..u64::MAX) {
        let mut state = seed;
        let v = arb_value(&mut state, 0);
        let text = v.to_string_pretty() + " x";
        prop_assert!(parse(&text).is_err());
    }
}

#[test]
fn duplicate_keys_reject_even_when_nested() {
    let e = parse(r#"{"outer": {"a": 1, "a": 2}}"#).unwrap_err();
    assert_eq!(e.kind, ErrorKind::DuplicateKey("a".into()));
}

#[test]
fn non_finite_floats_serialize_as_null_by_design() {
    assert_eq!(Value::Float(f64::NAN).to_string_pretty(), "null");
    assert_eq!(parse("null").unwrap(), Value::Null);
}
