//! Shared JSON wire format for the stone-age workspace.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so this
//! crate hand-rolls the two halves every harness-facing surface needs:
//!
//! * [`Value`] — an insertion-ordered JSON value with an RFC 8259-compliant
//!   pretty-printer (hoisted from the bench crate's report writer, which now
//!   re-exports it), plus `Index`/`From`/`PartialEq` conveniences for tests.
//! * [`parse`] — a **strict** parser with typed, byte-offset errors
//!   ([`JsonError`]). Strict means: no trailing data, no duplicate object
//!   keys, no leading zeros or bare `.5`/`5.` numbers, full `\uXXXX` escape
//!   handling (including surrogate pairs), and a nesting-depth limit so
//!   adversarial input cannot blow the stack.
//!
//! The parser and the emitter are inverses on parseable output:
//! `parse(v.to_string_pretty()) == v` for every value whose floats are
//! finite (non-finite floats serialize as `null`, like serde_json). The
//! property tests in `tests/roundtrip.rs` pin this down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod value;

pub use parse::{parse, ErrorKind, JsonError, MAX_DEPTH};
pub use value::Value;
