//! A strict RFC 8259 JSON parser with typed, byte-offset errors.
//!
//! Strictness choices (all deliberate, all tested):
//!
//! * **No trailing data** — the document must be exactly one value.
//! * **No duplicate object keys** — the job API treats a repeated field as
//!   a client bug, not a last-write-wins merge.
//! * **Strict number grammar** — no leading zeros (`01`), no bare `.5` or
//!   `5.`, no `+5`, no `Infinity`/`NaN` literals.
//! * **Strict strings** — raw control characters are rejected; `\uXXXX`
//!   escapes are decoded, including UTF-16 surrogate pairs; lone
//!   surrogates are errors.
//! * **Bounded nesting** — arrays/objects deeper than [`MAX_DEPTH`] are
//!   rejected so adversarial input cannot overflow the stack.
//!
//! Numbers without a fraction or exponent that fit `i64` parse as
//! [`Value::Int`]; everything else numeric parses as [`Value::Float`] —
//! mirroring the emitter, which prints `Int` without a decimal point and
//! always gives `Float` one. Rust's `f64` formatting is shortest
//! round-trip, so `parse ∘ emit` is the identity on finite values.

use crate::value::Value;
use std::fmt;

/// Maximum array/object nesting depth the parser will accept.
pub const MAX_DEPTH: usize = 128;

/// What went wrong, independent of where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Input ended in the middle of a value.
    UnexpectedEnd,
    /// A byte that cannot start or continue the expected construct.
    UnexpectedChar(char),
    /// A number violating the strict grammar (leading zero, bare dot, …).
    InvalidNumber,
    /// A backslash escape other than `" \ / b f n r t uXXXX`.
    InvalidEscape,
    /// A `\uXXXX` escape that is malformed or a lone/unpaired surrogate.
    InvalidUnicode,
    /// A raw control character (U+0000–U+001F) inside a string literal.
    ControlChar,
    /// An object repeating a key.
    DuplicateKey(String),
    /// Nesting deeper than [`MAX_DEPTH`].
    TooDeep,
    /// Valid value followed by non-whitespace garbage.
    TrailingData,
}

/// A parse failure: an [`ErrorKind`] plus the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub kind: ErrorKind,
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match &self.kind {
            ErrorKind::UnexpectedEnd => "unexpected end of input".to_string(),
            ErrorKind::UnexpectedChar(c) => format!("unexpected character {c:?}"),
            ErrorKind::InvalidNumber => "invalid number literal".to_string(),
            ErrorKind::InvalidEscape => "invalid string escape".to_string(),
            ErrorKind::InvalidUnicode => "invalid \\u escape or lone surrogate".to_string(),
            ErrorKind::ControlChar => "raw control character in string".to_string(),
            ErrorKind::DuplicateKey(k) => format!("duplicate object key {k:?}"),
            ErrorKind::TooDeep => format!("nesting deeper than {MAX_DEPTH}"),
            ErrorKind::TrailingData => "trailing data after value".to_string(),
        };
        write!(f, "{what} at byte {}", self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses exactly one JSON value from `input`.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err(ErrorKind::TrailingData));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ErrorKind) -> JsonError {
        JsonError {
            kind,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
            None => Err(self.err(ErrorKind::UnexpectedEnd)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else if self.bytes.len() - self.pos < word.len() {
            Err(self.err(ErrorKind::UnexpectedEnd))
        } else {
            Err(self.err(ErrorKind::UnexpectedChar(self.bytes[self.pos] as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err(ErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(ErrorKind::UnexpectedEnd)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(ErrorKind::UnexpectedChar(c as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = match self.peek() {
                Some(b'"') => self.string()?,
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
            };
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(JsonError {
                    kind: ErrorKind::DuplicateKey(key),
                    offset: key_at,
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                Some(c) => return Err(self.err(ErrorKind::UnexpectedChar(c as char))),
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err(ErrorKind::UnexpectedEnd)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        None => return Err(self.err(ErrorKind::UnexpectedEnd)),
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.unicode_escape()?);
                            continue; // pos already past the escape
                        }
                        Some(_) => return Err(self.err(ErrorKind::InvalidEscape)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err(ErrorKind::ControlChar)),
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: the input is a &str, so the
                    // sequence is valid — copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .expect("input is valid UTF-8 and pos is on a char boundary");
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err(ErrorKind::UnexpectedEnd));
        }
        let mut v: u16 = 0;
        for i in 0..4 {
            let d = match self.bytes[self.pos + i] {
                b @ b'0'..=b'9' => b - b'0',
                b @ b'a'..=b'f' => b - b'a' + 10,
                b @ b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err(ErrorKind::InvalidUnicode)),
            };
            v = (v << 4) | u16::from(d);
        }
        self.pos += 4;
        Ok(v)
    }

    /// Called with `pos` just past `\u`; leaves `pos` past the escape.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let start = self.pos - 2;
        let hi = self.hex4()?;
        if (0xD800..=0xDBFF).contains(&hi) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..=0xDFFF).contains(&lo) {
                    let c = 0x10000 + ((u32::from(hi) - 0xD800) << 10) + (u32::from(lo) - 0xDC00);
                    return char::from_u32(c).ok_or(JsonError {
                        kind: ErrorKind::InvalidUnicode,
                        offset: start,
                    });
                }
            }
            return Err(JsonError {
                kind: ErrorKind::InvalidUnicode,
                offset: start,
            });
        }
        if (0xDC00..=0xDFFF).contains(&hi) {
            return Err(JsonError {
                kind: ErrorKind::InvalidUnicode,
                offset: start,
            });
        }
        char::from_u32(u32::from(hi)).ok_or(JsonError {
            kind: ErrorKind::InvalidUnicode,
            offset: start,
        })
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        let num_err = JsonError {
            kind: ErrorKind::InvalidNumber,
            offset: start,
        };
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: 0, or [1-9][0-9]* — a leading zero may not be
        // followed by another digit.
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
                if matches!(self.peek(), Some(b'0'..=b'9')) {
                    return Err(num_err);
                }
            }
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(num_err),
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(num_err);
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(num_err);
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            // Integer literal overflowing i64: degrade to f64 like the
            // emitter's wide-unsigned From impls do.
        }
        let f: f64 = text.parse().map_err(|_| num_err.clone())?;
        if !f.is_finite() {
            return Err(num_err);
        }
        Ok(Value::Float(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kind(s: &str) -> ErrorKind {
        parse(s).expect_err(&format!("{s:?} should fail")).kind
    }

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Int(42));
        assert_eq!(parse("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse("0").unwrap(), Value::Int(0));
        assert_eq!(parse("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("-1.5E-2").unwrap(), Value::Float(-0.015));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn i64_bounds_and_overflow() {
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
        assert_eq!(parse("-9223372036854775808").unwrap(), Value::Int(i64::MIN));
        // One past i64::MAX degrades to Float, matching From<u64>.
        assert_eq!(
            parse("9223372036854775808").unwrap(),
            Value::Float(9223372036854775808.0)
        );
        assert_eq!(kind("1e999"), ErrorKind::InvalidNumber); // overflows f64
    }

    #[test]
    fn containers() {
        assert_eq!(parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
        assert_eq!(
            parse("[1, [2], {\"a\": 3}]").unwrap(),
            Value::Array(vec![
                Value::Int(1),
                Value::Array(vec![Value::Int(2)]),
                Value::Object(vec![("a".into(), Value::Int(3))]),
            ])
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Value::Str("a\"b\\c/d\n\t\r\u{8}\u{c}".into())
        );
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""\u00e9""#).unwrap(), Value::Str("é".into()));
        // Surrogate pair: U+1D11E MUSICAL SYMBOL G CLEF.
        assert_eq!(
            parse(r#""\ud834\udd1e""#).unwrap(),
            Value::Str("\u{1d11e}".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(parse("\"héllo→\"").unwrap(), Value::Str("héllo→".into()));
    }

    #[test]
    fn malformed_inputs_reject_with_typed_errors() {
        assert_eq!(kind(""), ErrorKind::UnexpectedEnd);
        assert_eq!(kind("   "), ErrorKind::UnexpectedEnd);
        assert_eq!(kind("nul"), ErrorKind::UnexpectedEnd);
        assert_eq!(kind("nulk"), ErrorKind::UnexpectedChar('n'));
        assert_eq!(kind("[1, 2"), ErrorKind::UnexpectedEnd);
        assert_eq!(kind("[1 2]"), ErrorKind::UnexpectedChar('2'));
        assert_eq!(kind("{\"a\" 1}"), ErrorKind::UnexpectedChar('1'));
        assert_eq!(kind("{\"a\": 1,}"), ErrorKind::UnexpectedChar('}'));
        assert_eq!(kind("[1,]"), ErrorKind::UnexpectedChar(']'));
        assert_eq!(kind("1 2"), ErrorKind::TrailingData);
        assert_eq!(kind("{} {}"), ErrorKind::TrailingData);
        assert_eq!(kind("+5"), ErrorKind::UnexpectedChar('+'));
        assert_eq!(kind("01"), ErrorKind::InvalidNumber);
        assert_eq!(kind("-"), ErrorKind::InvalidNumber);
        assert_eq!(kind(".5"), ErrorKind::UnexpectedChar('.'));
        assert_eq!(kind("5."), ErrorKind::InvalidNumber);
        assert_eq!(kind("5e"), ErrorKind::InvalidNumber);
        assert_eq!(kind("NaN"), ErrorKind::UnexpectedChar('N'));
        assert_eq!(kind("\"a"), ErrorKind::UnexpectedEnd);
        assert_eq!(kind("\"\\x\""), ErrorKind::InvalidEscape);
        assert_eq!(kind("\"\\u12g4\""), ErrorKind::InvalidUnicode);
        assert_eq!(kind("\"\\ud834\""), ErrorKind::InvalidUnicode); // lone high
        assert_eq!(kind("\"\\udd1e\""), ErrorKind::InvalidUnicode); // lone low
        assert_eq!(kind("\"a\nb\""), ErrorKind::ControlChar);
        assert_eq!(
            kind("{\"a\": 1, \"a\": 2}"),
            ErrorKind::DuplicateKey("a".into())
        );
    }

    #[test]
    fn depth_limit_rejects_instead_of_overflowing() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert_eq!(kind(&deep), ErrorKind::TooDeep);
        let ok = "[".repeat(MAX_DEPTH) + &"]".repeat(MAX_DEPTH);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn error_offsets_point_at_the_problem() {
        let e = parse("[1, @]").unwrap_err();
        assert_eq!(e.offset, 4);
        let e = parse("{\"k\": 1, \"k\": 2}").unwrap_err();
        assert_eq!(e.offset, 9);
        assert!(e.to_string().contains("duplicate"));
    }
}
