//! A minimal JSON value type and pretty-printer.
//!
//! The offline build environment cannot fetch `serde`/`serde_json`, so this
//! hand-rolled value type covers everything the workspace needs:
//! construction, `Index` access in tests, and RFC 8259-compliant
//! serialization. The matching strict parser lives in [`crate::parse`].

use std::fmt;
use std::ops::Index;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// A float (non-finite values serialize as `null`, like serde_json).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Whether this value is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload (`None` when not a string).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload (`None` when not an `Int`, or when a `Float`
    /// holds a non-integral or out-of-range value).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(v)
                if v.fract() == 0.0 && *v >= i64::MIN as f64 && *v < i64::MAX as f64 =>
            {
                Some(*v as i64)
            }
            _ => None,
        }
    }

    /// The numeric payload as `f64` (`None` when not a number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload (`None` when not a bool).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items (`None` when not an array).
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on a single line with no whitespace — the NDJSON form
    /// (one value per line) used by streaming endpoints.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
            scalar => scalar.write(out, 0),
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    let mut s = format!("{v}");
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        s.push_str(".0");
                    }
                    out.push_str(&s);
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Int(v as i64)
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, u8, u16, u32);

// Unsigned 64-bit-range values can exceed i64; degrade to Float rather
// than silently wrapping negative (serde_json keeps u64 lossless — the
// report values here never need more than f64's 53-bit mantissa).
macro_rules! impl_from_uint_wide {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                match i64::try_from(v) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::Float(v as f64),
                }
            }
        }
    )*};
}
impl_from_uint_wide!(u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

macro_rules! impl_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Int(v) if i64::try_from(*other).map_or(false, |o| *v == o))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_eq_int!(i32, i64, u32, u64, usize);

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_comparisons() {
        let v = Value::Object(vec![
            ("id".into(), "E0".into()),
            (
                "rows".into(),
                Value::Array(vec![Value::Array(vec![16usize.into(), 2.5.into()])]),
            ),
        ]);
        assert_eq!(v["id"], "E0");
        assert_eq!(v["rows"][0][0], 16);
        assert!(v["rows"].is_array());
        assert_eq!(v["missing"], Value::Null);
        assert_eq!(v["rows"][99], Value::Null);
    }

    #[test]
    fn wide_unsigned_values_do_not_wrap() {
        let big = u64::MAX;
        let converted = Value::from(big);
        assert_eq!(converted, Value::Float(big as f64));
        let negative_alias = Value::Int(big.wrapping_neg() as i64);
        assert!(converted != negative_alias);
        assert_eq!(Value::from(5u64), Value::Int(5));
        assert!(Value::Int(-1) != u64::MAX); // comparison never wraps either
    }

    #[test]
    fn pretty_printing_escapes_and_indents() {
        let v = Value::Object(vec![
            ("a\"b".into(), Value::Str("x\ny".into())),
            ("n".into(), Value::Null),
            ("t".into(), Value::Bool(true)),
            ("f".into(), Value::Float(1.0)),
            ("e".into(), Value::Array(vec![])),
        ]);
        let s = v.to_string_pretty();
        assert!(s.contains("\"a\\\"b\""));
        assert!(s.contains("\\n"));
        assert!(s.contains("1.0"));
        assert!(s.contains("[]"));
        assert!(s.starts_with('{') && s.ends_with('}'));
    }

    #[test]
    fn compact_form_is_single_line_and_parseable() {
        let v = Value::Object(vec![
            ("type".into(), "round".into()),
            ("seed".into(), 7u64.into()),
            (
                "xs".into(),
                Value::Array(vec![1.into(), Value::Null, "a\nb".into()]),
            ),
        ]);
        let s = v.to_string_compact();
        assert!(!s.contains('\n'));
        assert_eq!(s, r#"{"type":"round","seed":7,"xs":[1,null,"a\nb"]}"#);
        assert_eq!(crate::parse(&s).unwrap(), v);
    }

    #[test]
    fn typed_accessors() {
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Float(7.0).as_i64(), Some(7));
        assert_eq!(Value::Float(7.5).as_i64(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Null.as_i64(), None);
        assert!(Value::Array(vec![Value::Null]).as_array().is_some());
    }
}
