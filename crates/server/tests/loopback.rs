//! End-to-end loopback tests: a real server on `127.0.0.1:0`, driven by
//! the blocking client, pinned against direct [`Simulation`] runs.
//!
//! The acceptance path is `checkpoint_cancel_resume_is_bit_identical`:
//! a job submitted over HTTP is checkpointed, its snapshot downloaded
//! mid-run, the job cancelled, and a second job resumed from the
//! downloaded frame — the resumed run's fingerprint must equal the
//! fingerprint of the same spec run uninterrupted through the builder.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use stoneage_protocols::MisProtocol;
use stoneage_server::client::{request, EventStream, Response};
use stoneage_server::spec::encode_hex;
use stoneage_server::{outcome_fingerprint, parse_spec, Server, ServerConfig};
use stoneage_sim::Simulation;
use stoneage_wire::Value;

/// A scratch jobs dir removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir =
            std::env::temp_dir().join(format!("stoneage-loopback-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(tag: &str) -> (Server, String, Scratch) {
    let scratch = Scratch::new(tag);
    let server = Server::start(ServerConfig {
        cores: 2,
        max_jobs: 8,
        jobs_dir: Some(scratch.0.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.addr().to_string();
    (server, addr, scratch)
}

fn get(addr: &str, path: &str) -> Response {
    request(addr, "GET", path, &[]).expect("request succeeds")
}

fn post(addr: &str, path: &str, body: &[u8]) -> Response {
    request(addr, "POST", path, body).expect("request succeeds")
}

/// Polls `GET /jobs/{id}` until the state is terminal.
fn wait_terminal(addr: &str, id: i64) -> Value {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = get(addr, &format!("/jobs/{id}")).json();
        let state = status["state"].as_str().unwrap_or("").to_string();
        if matches!(state.as_str(), "done" | "failed" | "cancelled") {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never finished: {status}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// The fingerprint of `spec_body` run uninterrupted through the builder
/// (MIS only — what these tests submit).
fn direct_mis_fingerprint(spec_body: &[u8]) -> u64 {
    let spec = parse_spec(spec_body).expect("spec parses");
    let graph = spec.graph.build();
    let protocol = MisProtocol::new();
    let outcome = Simulation::sync(&protocol, &graph)
        .seed(spec.seeds[0])
        .budget(spec.budget)
        .run()
        .expect("direct run finishes");
    outcome_fingerprint(
        &outcome.outputs,
        outcome.rounds().unwrap_or(0),
        outcome.messages_sent().unwrap_or(0),
    )
}

#[test]
fn submitted_job_matches_direct_run() {
    let (server, addr, _scratch) = start("direct");
    let body = br#"{"graph": {"family": "gnp", "n": 48, "p": 0.15, "seed": 9},
                    "protocol": "mis", "seeds": [42], "budget": 10000,
                    "events_every": 1}"#;
    let resp = post(&addr, "/jobs", body);
    assert_eq!(
        resp.status,
        201,
        "{:?}",
        String::from_utf8_lossy(&resp.body)
    );
    let id = resp.json()["id"].as_i64().expect("job id");

    // Tail the event stream to completion: it must contain the start,
    // per-round progress, and the seed's fingerprint.
    let mut stream = EventStream::open(&addr, &format!("/jobs/{id}/events")).unwrap();
    let mut kinds = Vec::new();
    let mut streamed_fingerprint = None;
    while let Some(line) = stream.next_line().unwrap() {
        let event = stoneage_wire::parse(&line).expect("event line is JSON");
        let kind = event["type"].as_str().unwrap_or("").to_string();
        if kind == "seed_done" {
            streamed_fingerprint = Some(event["fingerprint"].as_str().unwrap().to_string());
        }
        kinds.push(kind);
    }
    assert_eq!(kinds.first().map(String::as_str), Some("started"));
    assert_eq!(kinds.last().map(String::as_str), Some("done"));
    assert!(
        kinds.iter().any(|k| k == "round"),
        "no round events: {kinds:?}"
    );

    let status = wait_terminal(&addr, id);
    assert_eq!(status["state"], "done");
    let reported = status["results"][0]["fingerprint"]
        .as_str()
        .expect("fingerprint string")
        .to_string();
    assert_eq!(Some(reported.clone()), streamed_fingerprint);
    assert_eq!(reported, format!("{:#018x}", direct_mis_fingerprint(body)));
    server.shutdown();
}

#[test]
fn checkpoint_cancel_resume_is_bit_identical() {
    let (server, addr, scratch) = start("resume");
    // Throttled so the run is still in flight when the cancel lands;
    // checkpoint cadence 2 keeps cancellation latency at two rounds.
    let body = br#"{"graph": {"family": "gnp", "n": 64, "p": 0.1, "seed": 3},
                    "protocol": "mis", "seeds": [7], "budget": 100000,
                    "checkpoint_every": 2, "throttle_ms": 20}"#;
    let id = post(&addr, "/jobs", body).json()["id"].as_i64().unwrap();

    // Stream until the first checkpoint is durable, then grab the frame
    // and cancel while the job is still throttled mid-run.
    let mut stream = EventStream::open(&addr, &format!("/jobs/{id}/events")).unwrap();
    loop {
        let line = stream.next_line().unwrap().expect("stream ended early");
        let event = stoneage_wire::parse(&line).unwrap();
        if event["type"] == "checkpoint" {
            break;
        }
    }
    let snapshot = get(&addr, &format!("/jobs/{id}/snapshot"));
    assert_eq!(snapshot.status, 200);
    assert!(!snapshot.body.is_empty());
    // The persisted copy exists too, and round-trips the validator.
    let on_disk = scratch.0.join(format!("job-{id}")).join("latest.snap");
    let persisted = stoneage_sim::read_snapshot_file(&on_disk).expect("persisted frame is valid");
    assert!(persisted.boundary() >= 2 && persisted.boundary().is_multiple_of(2));

    assert_eq!(post(&addr, &format!("/jobs/{id}/cancel"), &[]).status, 202);
    let status = wait_terminal(&addr, id);
    assert_eq!(
        status["state"], "cancelled",
        "20ms/round throttle on a 100k budget cannot finish first: {status}"
    );

    // Resume the downloaded frame as a fresh, unthrottled job.
    let resume_body = format!(
        r#"{{"graph": {{"family": "gnp", "n": 64, "p": 0.1, "seed": 3}},
            "protocol": "mis", "seeds": [7], "budget": 100000,
            "resume_from": "{}"}}"#,
        encode_hex(&snapshot.body)
    );
    let resumed = post(&addr, "/jobs", resume_body.as_bytes());
    assert_eq!(resumed.status, 201);
    let resumed_id = resumed.json()["id"].as_i64().unwrap();
    let status = wait_terminal(&addr, resumed_id);
    assert_eq!(status["state"], "done", "{status}");

    // The acceptance pin: resumed-over-HTTP == uninterrupted-direct.
    let uninterrupted = br#"{"graph": {"family": "gnp", "n": 64, "p": 0.1, "seed": 3},
                             "protocol": "mis", "seeds": [7], "budget": 100000}"#;
    assert_eq!(
        status["results"][0]["fingerprint"].as_str().unwrap(),
        format!("{:#018x}", direct_mis_fingerprint(uninterrupted))
    );
    server.shutdown();
}

#[test]
fn api_surface_rejects_and_reports() {
    let (server, addr, _scratch) = start("api");

    // Malformed specs come back as 400 with the typed error rendered.
    let bad = post(
        &addr,
        "/jobs",
        br#"{"graph": {"family": "gnp"}, "protocol": "mis"}"#,
    );
    assert_eq!(bad.status, 400);
    assert!(bad.json()["error"].as_str().unwrap().contains('n'));
    let bad = post(&addr, "/jobs", b"{not json");
    assert_eq!(bad.status, 400);
    let bad = post(
        &addr,
        "/jobs",
        br#"{"graph": {"family": "tree", "n": 4}, "protocol": "nope"}"#,
    );
    assert_eq!(bad.status, 400);

    // Unknown resources and jobs.
    assert_eq!(get(&addr, "/nope").status, 404);
    assert_eq!(get(&addr, "/jobs/999").status, 404);
    assert_eq!(get(&addr, "/jobs/999/snapshot").status, 404);
    assert_eq!(request(&addr, "DELETE", "/jobs", &[]).unwrap().status, 405);

    // A real job shows up in the list and in the metrics.
    let body = br#"{"graph": {"family": "tree", "n": 32}, "protocol": "coloring",
                    "seeds": [1, 2]}"#;
    let id = post(&addr, "/jobs", body).json()["id"].as_i64().unwrap();
    let status = wait_terminal(&addr, id);
    assert_eq!(status["state"], "done");
    assert_eq!(status["results"].as_array().unwrap().len(), 2);

    let list = get(&addr, "/jobs").json();
    let jobs = list["jobs"].as_array().unwrap();
    assert!(jobs.iter().any(|j| j["id"] == id && j["state"] == "done"));

    let metrics = get(&addr, "/metrics");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8(metrics.body).unwrap();
    assert!(text.contains("stoneage_server_jobs_submitted_total 1"));
    assert!(text.contains("stoneage_server_jobs_completed_total 1"));
    assert!(text.contains("# TYPE stoneage_server_rounds_total counter"));

    assert_eq!(get(&addr, "/healthz").status, 200);
    server.shutdown();
}

#[test]
fn cancel_while_queued_never_runs() {
    // One core, and a long throttled job hogging it: the second job
    // must be cancellable straight out of the queue.
    let scratch = Scratch::new("queued");
    let server = Server::start(ServerConfig {
        cores: 1,
        max_jobs: 8,
        jobs_dir: Some(scratch.0.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    let hog = br#"{"graph": {"family": "tree", "n": 16}, "protocol": "blinker",
                   "budget": 500, "throttle_ms": 10}"#;
    let hog_id = post(&addr, "/jobs", hog).json()["id"].as_i64().unwrap();
    let queued = br#"{"graph": {"family": "tree", "n": 16}, "protocol": "mis"}"#;
    let queued_id = post(&addr, "/jobs", queued).json()["id"].as_i64().unwrap();

    assert_eq!(
        post(&addr, &format!("/jobs/{queued_id}/cancel"), &[]).status,
        202
    );
    let status = wait_terminal(&addr, queued_id);
    assert_eq!(status["state"], "cancelled");
    assert!(status["results"].as_array().unwrap().is_empty());

    // The hog is unaffected; blinker jobs run to their budget.
    assert_eq!(
        post(&addr, &format!("/jobs/{hog_id}/cancel"), &[]).status,
        202
    );
    let status = wait_terminal(&addr, hog_id);
    assert!(matches!(
        status["state"].as_str().unwrap(),
        "cancelled" | "done"
    ));
    server.shutdown();
}
