//! The scheduling loop: one thread owning every runner `JoinHandle`.
//!
//! HTTP handlers never touch threads; they send [`Command`]s down a
//! channel and the orchestrator reacts. Runner threads report back on
//! the same channel as [`Event`]s — the command/event split (borrowed
//! from event-sourced orchestrators) keeps a single owner for all
//! mutable scheduling state: the pending queue, the running map, and
//! the free-core count. Jobs occupy `min(spec.workers, cores)` cores
//! while running; submissions beyond the core budget queue in FIFO
//! order.

use crate::job::{JobId, JobState, JobStore};
use crate::metrics::Metrics;
use crate::runner;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use stoneage_wire::Value;

/// Requests from HTTP handlers (and [`crate::Server::shutdown`]).
pub(crate) enum Command {
    /// Schedule the job with this id (already inserted in the store).
    Submit(JobId),
    /// Cancel the job: dequeue it if still queued, or raise its
    /// cooperative cancel flag if running.
    Cancel(JobId),
    /// Drain: cancel everything, join every runner, exit the loop.
    Shutdown,
}

/// Reports from runner threads.
pub(crate) enum Event {
    /// The runner for this job returned (any terminal state).
    Finished(JobId),
}

/// The channel message type: commands and events share one queue so the
/// loop has a single blocking point.
pub(crate) enum Msg {
    /// A request from outside the loop.
    Cmd(Command),
    /// A report from a runner thread.
    Ev(Event),
}

pub(crate) struct Orchestrator {
    store: Arc<JobStore>,
    metrics: Arc<Metrics>,
    jobs_dir: Option<PathBuf>,
    tx: Sender<Msg>,
    rx: Receiver<Msg>,
    cores: usize,
    free: usize,
    pending: VecDeque<JobId>,
    running: HashMap<JobId, (JoinHandle<()>, usize)>,
}

impl Orchestrator {
    pub(crate) fn new(
        store: Arc<JobStore>,
        metrics: Arc<Metrics>,
        jobs_dir: Option<PathBuf>,
        cores: usize,
        tx: Sender<Msg>,
        rx: Receiver<Msg>,
    ) -> Orchestrator {
        Orchestrator {
            store,
            metrics,
            jobs_dir,
            tx,
            rx,
            cores,
            free: cores,
            pending: VecDeque::new(),
            running: HashMap::new(),
        }
    }

    /// The loop body; runs until [`Command::Shutdown`] has drained every
    /// runner.
    pub(crate) fn run(mut self) {
        let mut draining = false;
        loop {
            let msg = match self.rx.recv() {
                Ok(msg) => msg,
                // Every sender gone (server dropped without shutdown):
                // nothing can arrive anymore, stop.
                Err(_) => return,
            };
            match msg {
                Msg::Cmd(Command::Submit(id)) => {
                    if draining {
                        self.finish_without_running(id, "server shutting down");
                    } else {
                        self.pending.push_back(id);
                        self.try_schedule();
                    }
                }
                Msg::Cmd(Command::Cancel(id)) => self.cancel(id),
                Msg::Cmd(Command::Shutdown) => {
                    draining = true;
                    // Queued jobs never ran: cancel them outright.
                    while let Some(id) = self.pending.pop_front() {
                        self.finish_without_running(id, "server shutting down");
                    }
                    // Running jobs get the cooperative flag and are
                    // joined as their Finished events arrive.
                    for (id, _) in self.running.iter() {
                        if let Some(job) = self.store.get(*id) {
                            job.request_cancel();
                        }
                    }
                    if self.running.is_empty() {
                        return;
                    }
                }
                Msg::Ev(Event::Finished(id)) => {
                    if let Some((handle, cores)) = self.running.remove(&id) {
                        let _ = handle.join();
                        self.free += cores;
                    }
                    if draining {
                        if self.running.is_empty() {
                            return;
                        }
                    } else {
                        self.try_schedule();
                    }
                }
            }
            self.metrics
                .queue_depth
                .store(self.pending.len(), Ordering::Relaxed);
        }
    }

    /// Starts queued jobs while cores remain. A job needing more cores
    /// than the whole machine still runs (alone) rather than starving.
    fn try_schedule(&mut self) {
        while let Some(&id) = self.pending.front() {
            let Some(job) = self.store.get(id) else {
                self.pending.pop_front();
                continue;
            };
            if job.cancel_requested() {
                // Cancelled while queued by a direct flag write.
                self.pending.pop_front();
                self.finish_without_running(id, "cancelled while queued");
                continue;
            }
            let need = job.spec.workers.min(self.cores).max(1);
            if need > self.free {
                break;
            }
            self.pending.pop_front();
            self.free -= need;
            job.set_state(JobState::Running);
            let metrics = self.metrics.clone();
            let jobs_dir = self.jobs_dir.clone();
            let tx = self.tx.clone();
            let handle = std::thread::spawn(move || {
                runner::execute(&job, &metrics, jobs_dir.as_deref());
                // The loop may already be gone on unclean teardown.
                let _ = tx.send(Msg::Ev(Event::Finished(id)));
            });
            self.running.insert(id, (handle, need));
        }
    }

    fn cancel(&mut self, id: JobId) {
        let Some(job) = self.store.get(id) else {
            return;
        };
        job.request_cancel();
        if let Some(pos) = self.pending.iter().position(|&p| p == id) {
            self.pending.remove(pos);
            self.finish_without_running(id, "cancelled while queued");
        }
        // Running jobs finish through the cooperative flag; terminal
        // jobs ignore the request (sticky state).
    }

    /// Terminal path for a job that never got a runner thread: mark it
    /// cancelled, emit the event, close the log.
    fn finish_without_running(&self, id: JobId, reason: &str) {
        let Some(job) = self.store.get(id) else {
            return;
        };
        if job.state().is_terminal() {
            return;
        }
        job.events.push(
            Value::Object(vec![
                ("type".into(), "cancelled".into()),
                ("id".into(), id.into()),
                ("reason".into(), reason.into()),
            ])
            .to_string_compact(),
        );
        Metrics::inc(&self.metrics.events);
        job.set_state(JobState::Cancelled);
        job.events.close();
        Metrics::inc(&self.metrics.jobs_completed);
    }
}
