//! Job records and the bounded [`JobStore`].
//!
//! A job moves through the state machine
//! `Queued → Running → {Done, Failed, Cancelled}` (the kubelet-style
//! provider pattern: the store maps job ids to shared records while the
//! orchestrator owns the `JoinHandle`s). Every record carries its own
//! [`EventLog`] — an append-only line buffer with a condvar — so any
//! number of HTTP streams can tail a job's NDJSON events without
//! touching the runner's hot path beyond one mutex push per event.

use crate::spec::JobSpec;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use stoneage_sim::Snapshot;
use stoneage_wire::Value;

/// Job identifier, dense from 1.
pub type JobId = u64;

/// Returned by [`JobStore::insert`] when every retained job is still
/// live (nothing terminal to evict).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreFull;

impl std::fmt::Display for StoreFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("job store full of live jobs")
    }
}

impl std::error::Error for StoreFull {}

/// The lifecycle state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for cores.
    Queued,
    /// Executing on the orchestrator's thread pool.
    Running,
    /// Every seed reached an output configuration.
    Done,
    /// A seed failed (budget exhausted, invalid resume frame, …).
    Failed,
    /// Cancelled by request, before or during execution.
    Cancelled,
}

impl JobState {
    /// The wire name (`queued`, `running`, `done`, `failed`, `cancelled`).
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }
}

/// Append-only NDJSON event buffer with wakeups for tailing readers.
#[derive(Default)]
pub struct EventLog {
    lines: Mutex<LogInner>,
    cond: Condvar,
}

#[derive(Default)]
struct LogInner {
    lines: Vec<String>,
    closed: bool,
}

impl EventLog {
    /// Appends one event line and wakes every tailing stream.
    pub fn push(&self, line: String) {
        let mut inner = self.lines.lock().expect("event log poisoned");
        inner.lines.push(line);
        self.cond.notify_all();
    }

    /// Marks the log complete (the job reached a terminal state); tailing
    /// streams drain what is left and hang up.
    pub fn close(&self) {
        let mut inner = self.lines.lock().expect("event log poisoned");
        inner.closed = true;
        self.cond.notify_all();
    }

    /// Lines from index `from` onward, plus whether the log is closed.
    /// Blocks up to `timeout` when nothing new is available yet.
    pub fn wait_from(&self, from: usize, timeout: Duration) -> (Vec<String>, bool) {
        let mut inner = self.lines.lock().expect("event log poisoned");
        if inner.lines.len() <= from && !inner.closed {
            let (guard, _) = self
                .cond
                .wait_timeout(inner, timeout)
                .expect("event log poisoned");
            inner = guard;
        }
        (
            inner.lines.get(from..).unwrap_or(&[]).to_vec(),
            inner.closed,
        )
    }

    /// Number of lines pushed so far.
    pub fn len(&self) -> usize {
        self.lines.lock().expect("event log poisoned").lines.len()
    }

    /// Whether no events have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Per-seed result of a finished run.
#[derive(Clone, Debug)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// FNV fingerprint over outputs + rounds + messages (see
    /// [`crate::outcome_fingerprint`]).
    pub fingerprint: u64,
    /// Rounds to the output configuration.
    pub rounds: u64,
    /// Total non-ε transmissions.
    pub messages: u64,
}

/// One job: spec, state, cancel flag, event log, latest snapshot,
/// results. Shared (`Arc`) between the store, the orchestrator, the
/// runner thread, and any number of HTTP handlers.
pub struct Job {
    /// The job id.
    pub id: JobId,
    /// The validated spec the job was submitted with.
    pub spec: JobSpec,
    state: Mutex<JobState>,
    /// Cooperative cancellation: the runner checks this between
    /// execution segments and between seeds.
    pub cancel: AtomicBool,
    /// The job's NDJSON event stream.
    pub events: EventLog,
    latest: Mutex<Option<Arc<Snapshot>>>,
    results: Mutex<Vec<SeedResult>>,
    error: Mutex<Option<String>>,
}

impl Job {
    fn new(id: JobId, spec: JobSpec) -> Job {
        Job {
            id,
            spec,
            state: Mutex::new(JobState::Queued),
            cancel: AtomicBool::new(false),
            events: EventLog::default(),
            latest: Mutex::new(None),
            results: Mutex::new(Vec::new()),
            error: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        *self.state.lock().expect("job state poisoned")
    }

    /// Transitions to `next`. Terminal states are sticky: once a job is
    /// `Done`/`Failed`/`Cancelled` no further transition applies (the
    /// orchestrator and the runner may race to cancel a finishing job).
    pub fn set_state(&self, next: JobState) -> JobState {
        let mut state = self.state.lock().expect("job state poisoned");
        if !state.is_terminal() {
            *state = next;
        }
        *state
    }

    /// Requests cooperative cancellation.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation was requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The most recent checkpoint frame, if any was captured.
    pub fn latest_snapshot(&self) -> Option<Arc<Snapshot>> {
        self.latest.lock().expect("job snapshot poisoned").clone()
    }

    /// Replaces the latest checkpoint frame.
    pub fn set_snapshot(&self, snap: Arc<Snapshot>) {
        *self.latest.lock().expect("job snapshot poisoned") = Some(snap);
    }

    /// Appends one seed's result.
    pub fn push_result(&self, result: SeedResult) {
        self.results
            .lock()
            .expect("job results poisoned")
            .push(result);
    }

    /// The per-seed results so far.
    pub fn results(&self) -> Vec<SeedResult> {
        self.results.lock().expect("job results poisoned").clone()
    }

    /// Records the failure message.
    pub fn set_error(&self, message: String) {
        *self.error.lock().expect("job error poisoned") = Some(message);
    }

    /// The failure message of a `Failed` job.
    pub fn error(&self) -> Option<String> {
        self.error.lock().expect("job error poisoned").clone()
    }

    /// The status document served by `GET /jobs/{id}`.
    pub fn status_json(&self) -> Value {
        let results: Vec<Value> = self
            .results()
            .iter()
            .map(|r| {
                Value::Object(vec![
                    ("seed".into(), r.seed.into()),
                    (
                        "fingerprint".into(),
                        format!("{:#018x}", r.fingerprint).into(),
                    ),
                    ("rounds".into(), r.rounds.into()),
                    ("messages".into(), r.messages.into()),
                ])
            })
            .collect();
        let snapshot_boundary = self
            .latest_snapshot()
            .map(|s| Value::from(s.boundary()))
            .unwrap_or(Value::Null);
        Value::Object(vec![
            ("id".into(), self.id.into()),
            ("state".into(), self.state().as_str().into()),
            ("protocol".into(), self.spec.protocol.as_str().into()),
            (
                "seeds".into(),
                Value::Array(self.spec.seeds.iter().map(|&s| s.into()).collect()),
            ),
            ("budget".into(), self.spec.budget.into()),
            ("results".into(), Value::Array(results)),
            (
                "error".into(),
                self.error().map(Value::from).unwrap_or(Value::Null),
            ),
            ("snapshot_boundary".into(), snapshot_boundary),
        ])
    }
}

/// Bounded map of job id → record. When full, inserting evicts the
/// oldest **terminal** job; if every slot is still live the submit is
/// refused (HTTP 429) rather than growing without bound.
pub struct JobStore {
    inner: Mutex<StoreInner>,
    cap: usize,
}

struct StoreInner {
    jobs: BTreeMap<JobId, Arc<Job>>,
    next_id: JobId,
}

impl JobStore {
    /// A store retaining at most `cap` jobs.
    pub fn new(cap: usize) -> JobStore {
        JobStore {
            inner: Mutex::new(StoreInner {
                jobs: BTreeMap::new(),
                next_id: 1,
            }),
            cap: cap.max(1),
        }
    }

    /// Admits a new job. [`StoreFull`] when the store is full of live
    /// jobs.
    pub fn insert(&self, spec: JobSpec) -> Result<Arc<Job>, StoreFull> {
        let mut inner = self.inner.lock().expect("job store poisoned");
        if inner.jobs.len() >= self.cap {
            let evict = inner
                .jobs
                .iter()
                .find(|(_, j)| j.state().is_terminal())
                .map(|(&id, _)| id);
            match evict {
                Some(id) => {
                    inner.jobs.remove(&id);
                }
                None => return Err(StoreFull),
            }
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Arc::new(Job::new(id, spec));
        inner.jobs.insert(id, job.clone());
        Ok(job)
    }

    /// Looks up a job.
    pub fn get(&self, id: JobId) -> Option<Arc<Job>> {
        self.inner
            .lock()
            .expect("job store poisoned")
            .jobs
            .get(&id)
            .cloned()
    }

    /// Every retained job, in id order.
    pub fn list(&self) -> Vec<Arc<Job>> {
        self.inner
            .lock()
            .expect("job store poisoned")
            .jobs
            .values()
            .cloned()
            .collect()
    }

    /// Jobs per state: `[queued, running, done, failed, cancelled]`.
    pub fn counts(&self) -> [usize; 5] {
        let mut counts = [0usize; 5];
        for job in self.list() {
            let i = match job.state() {
                JobState::Queued => 0,
                JobState::Running => 1,
                JobState::Done => 2,
                JobState::Failed => 3,
                JobState::Cancelled => 4,
            };
            counts[i] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn spec() -> JobSpec {
        parse_spec(br#"{"graph": {"family": "tree", "n": 4}, "protocol": "mis"}"#).unwrap()
    }

    #[test]
    fn state_machine_is_sticky_at_terminals() {
        let job = Job::new(1, spec());
        assert_eq!(job.state(), JobState::Queued);
        assert_eq!(job.set_state(JobState::Running), JobState::Running);
        assert_eq!(job.set_state(JobState::Cancelled), JobState::Cancelled);
        // A racing "finished" transition cannot resurrect the job.
        assert_eq!(job.set_state(JobState::Done), JobState::Cancelled);
        assert_eq!(job.state(), JobState::Cancelled);
    }

    #[test]
    fn store_evicts_terminal_jobs_only() {
        let store = JobStore::new(2);
        let a = store.insert(spec()).unwrap();
        let _b = store.insert(spec()).unwrap();
        // Full of live jobs: refuse.
        assert!(store.insert(spec()).is_err());
        // Finish one; the next insert evicts it.
        a.set_state(JobState::Done);
        let c = store.insert(spec()).unwrap();
        assert_eq!(c.id, 3);
        assert!(store.get(a.id).is_none());
        assert!(store.get(c.id).is_some());
        assert_eq!(store.list().len(), 2);
    }

    #[test]
    fn event_log_tail_sees_lines_and_close() {
        let log = EventLog::default();
        log.push("one".into());
        let (lines, closed) = log.wait_from(0, Duration::from_millis(1));
        assert_eq!(lines, vec!["one".to_string()]);
        assert!(!closed);
        // Nothing new: times out empty.
        let (lines, closed) = log.wait_from(1, Duration::from_millis(1));
        assert!(lines.is_empty() && !closed);
        log.push("two".into());
        log.close();
        let (lines, closed) = log.wait_from(1, Duration::from_millis(1));
        assert_eq!(lines, vec!["two".to_string()]);
        assert!(closed);
    }
}
