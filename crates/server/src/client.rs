//! A tiny blocking HTTP client for tests, benches, and examples.
//!
//! Like [`crate::http`] this exists because the environment is offline:
//! no `reqwest`, no `curl` crate. It speaks exactly the dialect the
//! server emits — `Content-Length` bodies and chunked NDJSON streams —
//! and nothing more.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use stoneage_wire::{parse, Value};

/// A decoded response.
#[derive(Debug)]
pub struct Response {
    /// The HTTP status code.
    pub status: u16,
    /// The full body (chunked transfers are reassembled).
    pub body: Vec<u8>,
}

impl Response {
    /// The body parsed as JSON. Panics on malformed JSON — this is a
    /// test/bench helper and a malformed body is a server bug.
    pub fn json(&self) -> Value {
        let text = std::str::from_utf8(&self.body).expect("response body is not UTF-8");
        parse(text).expect("response body is not JSON")
    }
}

/// Performs one request against `addr` (e.g. `"127.0.0.1:4915"`) and
/// reads the complete response.
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<Response> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = send(&stream, method, path, body)?;
    let (status, chunked, content_length) = read_head(&mut reader)?;
    let body = if chunked {
        read_chunked(&mut reader)?
    } else {
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;
        body
    };
    Ok(Response { status, body })
}

/// An in-progress chunked NDJSON stream: call [`EventStream::next_line`]
/// until it returns `None`.
pub struct EventStream {
    reader: BufReader<TcpStream>,
    /// Bytes of the current chunk not yet consumed.
    chunk_remaining: usize,
    buffer: Vec<u8>,
    done: bool,
}

impl EventStream {
    /// Opens `GET path` against `addr` and positions the stream at the
    /// first event line. Fails if the response is not 200 + chunked.
    pub fn open(addr: &str, path: &str) -> io::Result<EventStream> {
        let stream = TcpStream::connect(addr)?;
        let mut reader = send(&stream, "GET", path, &[])?;
        let (status, chunked, _) = read_head(&mut reader)?;
        if status != 200 || !chunked {
            return Err(io::Error::other(format!(
                "expected 200 chunked, got {status} chunked={chunked}"
            )));
        }
        Ok(EventStream {
            reader,
            chunk_remaining: 0,
            buffer: Vec::new(),
            done: false,
        })
    }

    /// The next complete event line, or `None` when the server finished
    /// the stream. Blocks while the job is still producing events.
    pub fn next_line(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(pos) = self.buffer.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buffer.drain(..=pos).collect();
                let text = String::from_utf8_lossy(&line).trim_end().to_string();
                if text.is_empty() {
                    continue;
                }
                return Ok(Some(text));
            }
            if self.done {
                return Ok(None);
            }
            self.fill()?;
        }
    }

    fn fill(&mut self) -> io::Result<()> {
        if self.chunk_remaining == 0 {
            let size = read_chunk_size(&mut self.reader)?;
            if size == 0 {
                self.done = true;
                return Ok(());
            }
            self.chunk_remaining = size;
        }
        let take = self.chunk_remaining.min(4096);
        let start = self.buffer.len();
        self.buffer.resize(start + take, 0);
        self.reader.read_exact(&mut self.buffer[start..])?;
        self.chunk_remaining -= take;
        if self.chunk_remaining == 0 {
            // Consume the CRLF terminating the chunk.
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf)?;
        }
        Ok(())
    }
}

fn send(
    stream: &TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> io::Result<BufReader<TcpStream>> {
    let mut writer = stream.try_clone()?;
    write!(
        writer,
        "{method} {path} HTTP/1.1\r\nHost: stoneage\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    writer.write_all(body)?;
    writer.flush()?;
    Ok(BufReader::new(stream.try_clone()?))
}

/// Reads the status line and headers; returns
/// `(status, chunked, content_length)`.
fn read_head(reader: &mut BufReader<TcpStream>) -> io::Result<(u16, bool, usize)> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::other(format!("bad status line: {line:?}")))?;
    let mut chunked = false;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "transfer-encoding" && value.eq_ignore_ascii_case("chunked") {
                chunked = true;
            } else if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| io::Error::other("bad content-length"))?;
            }
        }
    }
    Ok((status, chunked, content_length))
}

fn read_chunk_size(reader: &mut BufReader<TcpStream>) -> io::Result<usize> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    usize::from_str_radix(line.trim(), 16)
        .map_err(|_| io::Error::other(format!("bad chunk size: {line:?}")))
}

fn read_chunked(reader: &mut BufReader<TcpStream>) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    loop {
        let size = read_chunk_size(reader)?;
        if size == 0 {
            // Trailing CRLF after the last-chunk marker may or may not
            // arrive before the peer closes; ignore errors.
            let mut crlf = [0u8; 2];
            let _ = reader.read_exact(&mut crlf);
            return Ok(body);
        }
        let start = body.len();
        body.resize(start + size, 0);
        reader.read_exact(&mut body[start..])?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
    }
}
