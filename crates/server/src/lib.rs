//! Simulation-as-a-service: an HTTP job orchestrator for the Stone Age
//! engine.
//!
//! This crate turns the [`stoneage_sim::Simulation`] builder into a
//! long-running service: clients submit simulation jobs (graph spec +
//! protocol + seed matrix + budget + churn/fault plans) as JSON over
//! HTTP/1.1, and the server schedules them across a core budget,
//! streams their observer events as NDJSON, persists checkpoints, and
//! serves snapshot frames that can be resumed — on this server or any
//! other process — to a bit-identical outcome.
//!
//! Everything is hand-rolled on `std::net` because the build
//! environment is offline (no tokio/hyper/serde); see [`http`] and the
//! `stoneage-wire` crate for the wire layers.
//!
//! # Endpoints
//!
//! | Method | Path | Meaning |
//! |---|---|---|
//! | `POST` | `/jobs` | Submit a job spec; returns `{"id", "state"}` |
//! | `GET` | `/jobs` | List retained jobs |
//! | `GET` | `/jobs/{id}` | Status document (state, per-seed results) |
//! | `POST` | `/jobs/{id}/cancel` | Request cooperative cancellation |
//! | `GET` | `/jobs/{id}/events` | Chunked NDJSON event stream (tails until terminal) |
//! | `GET` | `/jobs/{id}/snapshot` | Latest checkpoint frame (binary) |
//! | `GET` | `/metrics` | Prometheus text exposition |
//! | `GET` | `/healthz` | Liveness probe |
//!
//! # Example
//!
//! ```no_run
//! use stoneage_server::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! let body = br#"{"graph": {"family": "gnp", "n": 64, "p": 0.1},
//!                 "protocol": "mis", "seeds": [1, 2, 3]}"#;
//! let resp = stoneage_server::client::request(
//!     &server.addr().to_string(), "POST", "/jobs", body).unwrap();
//! assert_eq!(resp.status, 201);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
mod job;
mod metrics;
mod orchestrator;
mod runner;
pub mod spec;

pub use job::{EventLog, Job, JobId, JobState, JobStore, SeedResult, StoreFull};
pub use metrics::Metrics;
pub use runner::outcome_fingerprint;
pub use spec::{parse_spec, GraphSpec, JobSpec, ProtocolId, SpecError};

use http::{
    read_request, respond, respond_error, respond_json, BadRequest, ChunkedWriter, Request,
};
use orchestrator::{Command, Msg, Orchestrator};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use stoneage_wire::Value;

/// Server construction knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. The default `127.0.0.1:0` picks a free port —
    /// read it back with [`Server::addr`].
    pub addr: String,
    /// Core budget for the scheduler (`0` = detect with
    /// `std::thread::available_parallelism`).
    pub cores: usize,
    /// Maximum jobs retained in the store (completed jobs are evicted
    /// oldest-first once full; submissions are refused with HTTP 429
    /// when every slot is live).
    pub max_jobs: usize,
    /// Directory for persisted checkpoint frames
    /// (`<dir>/job-<id>/latest.snap`). `None` keeps snapshots in
    /// memory only.
    pub jobs_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cores: 0,
            max_jobs: 256,
            jobs_dir: None,
        }
    }
}

struct Shared {
    store: Arc<JobStore>,
    metrics: Arc<Metrics>,
    tx: Sender<Msg>,
    shutdown: AtomicBool,
}

/// A running server: an acceptor thread, an orchestrator thread, and
/// one short-lived handler thread per connection.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    orchestrator: Option<JoinHandle<()>>,
    finished: bool,
}

impl Server {
    /// Binds, spawns the orchestrator and the acceptor, and returns.
    pub fn start(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let cores = if config.cores == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.cores
        };
        if let Some(dir) = &config.jobs_dir {
            std::fs::create_dir_all(dir)?;
        }
        let store = Arc::new(JobStore::new(config.max_jobs));
        let metrics = Arc::new(Metrics::default());
        let (tx, rx) = channel();
        let orchestrator = Orchestrator::new(
            store.clone(),
            metrics.clone(),
            config.jobs_dir.clone(),
            cores,
            tx.clone(),
            rx,
        );
        let orch_handle = std::thread::spawn(move || orchestrator.run());
        let shared = Arc::new(Shared {
            store,
            metrics,
            tx,
            shutdown: AtomicBool::new(false),
        });
        let acceptor_shared = shared.clone();
        let acceptor = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if acceptor_shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let handler_shared = acceptor_shared.clone();
                std::thread::spawn(move || handle_connection(stream, &handler_shared));
            }
        });
        Ok(Server {
            addr,
            shared,
            acceptor: Some(acceptor),
            orchestrator: Some(orch_handle),
            finished: false,
        })
    }

    /// The bound address (useful with the default `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, cancels queued jobs, flags running jobs, and
    /// joins both service threads once every runner has drained.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let _ = self.shared.tx.send(Msg::Cmd(Command::Shutdown));
        // Unblock the acceptor's `incoming()` with a throwaway
        // connection so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.orchestrator.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let request = match read_request(&stream) {
        Ok(request) => request,
        Err(BadRequest::Io(_)) => return,
        Err(BadRequest::Malformed(reason)) => {
            let _ = respond_error(&mut stream, 400, reason);
            return;
        }
    };
    Metrics::inc(&shared.metrics.http_requests);
    let _ = route(&mut stream, &request, shared);
}

fn route(stream: &mut TcpStream, request: &Request, shared: &Shared) -> io::Result<()> {
    let path = request.path.as_str();
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => submit(stream, &request.body, shared),
        ("GET", ["jobs"]) => list(stream, shared),
        ("GET", ["jobs", id]) => with_job(stream, shared, id, |stream, job| {
            respond_json(stream, 200, &job.status_json())
        }),
        ("POST", ["jobs", id, "cancel"]) => with_job(stream, shared, id, |stream, job| {
            shared
                .tx
                .send(Msg::Cmd(Command::Cancel(job.id)))
                .map_err(|_| io::Error::other("orchestrator gone"))?;
            // Raise the flag directly too, so a cancel observed between
            // segments does not wait on the orchestrator's queue.
            job.request_cancel();
            respond_json(
                stream,
                202,
                &Value::Object(vec![
                    ("id".into(), job.id.into()),
                    ("cancel".into(), "requested".into()),
                ]),
            )
        }),
        ("GET", ["jobs", id, "events"]) => with_job(stream, shared, id, |stream, job| {
            stream_events(stream, job, shared)
        }),
        ("GET", ["jobs", id, "snapshot"]) => with_job(stream, shared, id, |stream, job| match job
            .latest_snapshot()
        {
            Some(frame) => respond(stream, 200, "application/octet-stream", &frame.to_bytes()),
            None => respond_error(stream, 404, "no checkpoint captured yet"),
        }),
        ("GET", ["metrics"]) => {
            let body = shared.metrics.render(&shared.store);
            respond(stream, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("GET", ["healthz"]) => respond(stream, 200, "text/plain", b"ok\n"),
        ("GET" | "POST", _) => respond_error(stream, 404, "no such resource"),
        _ => respond_error(stream, 405, "method not allowed"),
    }
}

fn submit(stream: &mut TcpStream, body: &[u8], shared: &Shared) -> io::Result<()> {
    let spec = match parse_spec(body) {
        Ok(spec) => spec,
        Err(e) => return respond_error(stream, 400, &e.to_string()),
    };
    let job = match shared.store.insert(spec) {
        Ok(job) => job,
        Err(StoreFull) => return respond_error(stream, 429, "job store full of live jobs"),
    };
    Metrics::inc(&shared.metrics.jobs_submitted);
    if shared.tx.send(Msg::Cmd(Command::Submit(job.id))).is_err() {
        return respond_error(stream, 503, "orchestrator gone");
    }
    respond_json(
        stream,
        201,
        &Value::Object(vec![
            ("id".into(), job.id.into()),
            ("state".into(), job.state().as_str().into()),
        ]),
    )
}

fn list(stream: &mut TcpStream, shared: &Shared) -> io::Result<()> {
    let jobs: Vec<Value> = shared
        .store
        .list()
        .iter()
        .map(|job| {
            Value::Object(vec![
                ("id".into(), job.id.into()),
                ("state".into(), job.state().as_str().into()),
                ("protocol".into(), job.spec.protocol.as_str().into()),
            ])
        })
        .collect();
    respond_json(
        stream,
        200,
        &Value::Object(vec![("jobs".into(), Value::Array(jobs))]),
    )
}

fn with_job(
    stream: &mut TcpStream,
    shared: &Shared,
    id: &str,
    then: impl FnOnce(&mut TcpStream, &Arc<Job>) -> io::Result<()>,
) -> io::Result<()> {
    let Some(job) = id.parse().ok().and_then(|id| shared.store.get(id)) else {
        return respond_error(stream, 404, "no such job");
    };
    then(stream, &job)
}

/// Tails the job's event log as chunked NDJSON until the log closes
/// (terminal state) or the server shuts down.
fn stream_events(stream: &mut TcpStream, job: &Arc<Job>, shared: &Shared) -> io::Result<()> {
    let mut writer = ChunkedWriter::start(stream, 200, "application/x-ndjson")?;
    let mut cursor = 0usize;
    loop {
        let (lines, closed) = job.events.wait_from(cursor, Duration::from_millis(50));
        for line in &lines {
            let mut chunk = line.clone().into_bytes();
            chunk.push(b'\n');
            writer.chunk(&chunk)?;
        }
        cursor += lines.len();
        if (closed && lines.is_empty()) || shared.shutdown.load(Ordering::Relaxed) {
            return writer.finish();
        }
    }
}
