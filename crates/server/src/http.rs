//! A minimal HTTP/1.1 layer over [`std::net::TcpStream`].
//!
//! The build environment is offline, so instead of `hyper`/`axum` this
//! module hand-rolls exactly what the job API needs: request-line +
//! header parsing with size limits, `Content-Length` bodies, fixed
//! responses, and a chunked-transfer writer for the NDJSON event
//! stream. Every connection is `Connection: close` — the orchestrator's
//! jobs are long-lived, the HTTP exchanges are not, and keep-alive
//! bookkeeping would buy nothing here.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use stoneage_wire::Value;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;
/// Upper bound on a request body (job specs with an embedded hex
/// snapshot frame are the largest legitimate payload).
const MAX_BODY: usize = 16 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request path, e.g. `/jobs/3/events` (query strings are not
    /// used by this API and are not split off).
    pub path: String,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// A request that could not be read; maps onto a 4xx response.
#[derive(Debug)]
pub enum BadRequest {
    /// Socket-level failure (also covers a peer that hung up mid-head).
    Io(io::Error),
    /// The head or body violated the grammar or a size limit.
    Malformed(&'static str),
}

impl From<io::Error> for BadRequest {
    fn from(e: io::Error) -> Self {
        BadRequest::Io(e)
    }
}

/// Reads one request from `stream` (which it wraps in a [`BufReader`];
/// the raw stream handle stays usable for the response).
pub fn read_request(stream: &TcpStream) -> Result<Request, BadRequest> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(BadRequest::Malformed("empty request"));
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or(BadRequest::Malformed("missing method"))?
        .to_string();
    let path = parts
        .next()
        .ok_or(BadRequest::Malformed("missing path"))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(BadRequest::Malformed("not HTTP/1.x")),
    }

    let mut content_length: usize = 0;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        head_bytes += header.len();
        if head_bytes > MAX_HEAD {
            return Err(BadRequest::Malformed("request head too large"));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| BadRequest::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY {
        return Err(BadRequest::Malformed("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes a complete response with a `Content-Length` body.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    )?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn respond_json(stream: &mut TcpStream, status: u16, value: &Value) -> io::Result<()> {
    let mut body = value.to_string_pretty();
    body.push('\n');
    respond(stream, status, "application/json", body.as_bytes())
}

/// Writes the standard error payload `{"error": ...}`.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    respond_json(
        stream,
        status,
        &Value::Object(vec![("error".into(), message.into())]),
    )
}

/// A `Transfer-Encoding: chunked` response in progress: one chunk per
/// [`ChunkedWriter::chunk`] call, terminated by [`ChunkedWriter::finish`].
/// The NDJSON event stream writes one event line per chunk so clients
/// see events as they happen, not when the job ends.
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Starts a chunked response with the given status and content type.
    pub fn start(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        write!(
            stream,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
            status,
            reason(status),
            content_type
        )?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one chunk and flushes it to the peer.
    pub fn chunk(&mut self, data: &[u8]) -> io::Result<()> {
        if data.is_empty() {
            // An empty chunk would terminate the stream early.
            return Ok(());
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the chunked stream.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}
