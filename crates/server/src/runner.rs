//! Job execution: the segmented runner behind the orchestrator.
//!
//! The engine has no cancellation hook, and adding one would thread a
//! flag through every backend. Instead the runner exploits the snapshot
//! subsystem: a job with a checkpoint cadence is executed as a chain of
//! **segments**, each a complete [`Simulation`] run whose budget is the
//! next checkpoint boundary. A segment that ends in
//! [`ExecError::RoundLimit`] before the real budget is not a failure —
//! the observer just captured a fresh snapshot at that exact boundary,
//! so the runner checks the job's cancel flag and resumes from the
//! frame. Cancellation latency is therefore one cadence, and a
//! cancelled job always leaves a downloadable, resumable snapshot.
//! Jobs with cadence `0` run as a single segment (cancel applies only
//! between seeds).
//!
//! Determinism: the snapshot config digest excludes the budget, so a
//! run chopped into segments replays the exact per-round RNG stream of
//! an uninterrupted run — the loopback test pins this by comparing
//! fingerprints against a direct `Simulation` run.

use crate::job::{Job, JobState, SeedResult};
use crate::metrics::Metrics;
use crate::spec::ProtocolId;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use stoneage_core::{
    Alphabet, AsMulti, Letter, MultiFsm, Protocol, TableProtocol, TableProtocolBuilder, Transitions,
};
use stoneage_graph::{DynamicGraph, Graph};
use stoneage_protocols::stabilization::{coloring_stabilized, mis_stabilized};
use stoneage_protocols::{ColoringProtocol, MisProtocol, SelfStabColoring, SelfStabMis};
use stoneage_sim::{
    write_snapshot_file, ExecError, Observer, Simulation, SnapState, Snapshot,
    StabilizationObserver,
};
use stoneage_wire::Value;

/// A stabilization predicate usable across segments: plain `fn` so the
/// registry below can pick one per protocol without boxing.
type Pred<S> = fn(&Graph, &DynamicGraph, &[S]) -> bool;

/// The deterministic fingerprint the server reports per seed: FNV-1a 64
/// over the output vector, the round count, and the message count.
/// Public so integration tests and benches can pin a server-run job
/// against a direct [`Simulation`] run of the same spec.
pub fn outcome_fingerprint(outputs: &[u64], rounds: u64, messages: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    let mut word = |w: u64| {
        for byte in w.to_le_bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
    };
    word(outputs.len() as u64);
    for &out in outputs {
        word(out);
    }
    word(rounds);
    word(messages);
    hash
}

/// The benchmark blinker: two states, flips every round, never
/// terminates (same table as `engine_bench`'s workload). Blinker jobs
/// run to their round budget by design.
fn blinker() -> TableProtocol {
    let alphabet = Alphabet::new(["a", "b"]);
    let mut builder = TableProtocolBuilder::new("blinker", alphabet, 1, Letter(0));
    let s0 = builder.add_state("s0", Letter(0));
    let s1 = builder.add_state("s1", Letter(1));
    builder.add_input_state(s0);
    builder.set_transition_all(s0, Transitions::det(s1, Some(Letter(0))));
    builder.set_transition_all(s1, Transitions::det(s0, Some(Letter(1))));
    builder.build().expect("blinker table is well-formed")
}

/// Runs `job` to a terminal state, pushing NDJSON events, snapshots,
/// and per-seed results onto the shared record as it goes. Called from
/// an orchestrator-owned worker thread.
pub(crate) fn execute(job: &Arc<Job>, metrics: &Arc<Metrics>, jobs_dir: Option<&Path>) {
    let graph = job.spec.graph.build();
    emit(
        job,
        metrics,
        Value::Object(vec![
            ("type".into(), "started".into()),
            ("id".into(), job.id.into()),
            ("protocol".into(), job.spec.protocol.as_str().into()),
            ("nodes".into(), graph.node_count().into()),
        ]),
    );
    let result = match job.spec.protocol {
        ProtocolId::Mis => run_seeds(
            &MisProtocol::new(),
            Some(mis_stabilized as Pred<_>),
            false,
            &graph,
            job,
            metrics,
            jobs_dir,
        ),
        ProtocolId::Coloring => run_seeds(
            &ColoringProtocol::new(),
            Some(coloring_stabilized as Pred<_>),
            false,
            &graph,
            job,
            metrics,
            jobs_dir,
        ),
        ProtocolId::SelfStabMis => run_seeds(
            &SelfStabMis::new(),
            Some(mis_stabilized as Pred<_>),
            false,
            &graph,
            job,
            metrics,
            jobs_dir,
        ),
        ProtocolId::SelfStabColoring => run_seeds(
            &SelfStabColoring::new(),
            Some(coloring_stabilized as Pred<_>),
            false,
            &graph,
            job,
            metrics,
            jobs_dir,
        ),
        ProtocolId::Blinker => run_seeds(
            &AsMulti(blinker()),
            None,
            true,
            &graph,
            job,
            metrics,
            jobs_dir,
        ),
    };
    let (event, state) = match result {
        Ok(true) => ("done", JobState::Done),
        Ok(false) => ("cancelled", JobState::Cancelled),
        Err(message) => {
            job.set_error(message.clone());
            emit(
                job,
                metrics,
                Value::Object(vec![
                    ("type".into(), "failed".into()),
                    ("id".into(), job.id.into()),
                    ("error".into(), message.into()),
                ]),
            );
            job.set_state(JobState::Failed);
            job.events.close();
            Metrics::inc(&metrics.jobs_completed);
            return;
        }
    };
    emit(
        job,
        metrics,
        Value::Object(vec![
            ("type".into(), event.into()),
            ("id".into(), job.id.into()),
        ]),
    );
    job.set_state(state);
    job.events.close();
    Metrics::inc(&metrics.jobs_completed);
}

/// Runs every seed in the spec's matrix. `Ok(true)` = all seeds done,
/// `Ok(false)` = cancelled, `Err` = failed.
fn run_seeds<P>(
    protocol: &P,
    stab_pred: Option<Pred<P::State>>,
    run_to_budget: bool,
    graph: &Graph,
    job: &Arc<Job>,
    metrics: &Arc<Metrics>,
    jobs_dir: Option<&Path>,
) -> Result<bool, String>
where
    P: MultiFsm + Sync,
    P::State: SnapState + Send + Sync,
{
    let resume0 = match &job.spec.resume_from {
        Some(bytes) => Some(Arc::new(
            Snapshot::from_bytes(bytes).map_err(|e| format!("resume_from frame: {e}"))?,
        )),
        None => None,
    };
    for (i, &seed) in job.spec.seeds.iter().enumerate() {
        if job.cancel_requested() {
            return Ok(false);
        }
        emit(
            job,
            metrics,
            Value::Object(vec![
                ("type".into(), "seed_started".into()),
                ("seed".into(), seed.into()),
            ]),
        );
        let resume = if i == 0 { resume0.clone() } else { None };
        match run_one_seed(
            protocol,
            stab_pred,
            run_to_budget,
            graph,
            job,
            seed,
            resume,
            metrics,
            jobs_dir,
        )? {
            Some(result) => {
                emit(
                    job,
                    metrics,
                    Value::Object(vec![
                        ("type".into(), "seed_done".into()),
                        ("seed".into(), seed.into()),
                        (
                            "fingerprint".into(),
                            format!("{:#018x}", result.fingerprint).into(),
                        ),
                        ("rounds".into(), result.rounds.into()),
                        ("messages".into(), result.messages.into()),
                    ]),
                );
                job.push_result(result);
            }
            None => return Ok(false),
        }
    }
    Ok(true)
}

/// Runs one seed as a chain of checkpoint-bounded segments.
/// `Ok(None)` = cancelled between segments.
#[allow(clippy::too_many_arguments)] // internal plumbing fn, one call site
fn run_one_seed<P>(
    protocol: &P,
    stab_pred: Option<Pred<P::State>>,
    run_to_budget: bool,
    graph: &Graph,
    job: &Arc<Job>,
    seed: u64,
    resume: Option<Arc<Snapshot>>,
    metrics: &Arc<Metrics>,
    jobs_dir: Option<&Path>,
) -> Result<Option<SeedResult>, String>
where
    P: MultiFsm + Sync,
    P::State: SnapState + Send + Sync,
{
    let spec = &job.spec;
    let cadence = spec.checkpoint_every;
    let total = spec.budget;
    let mut last: Option<Arc<Snapshot>> = resume;
    let mut stab = match (&spec.churn, stab_pred) {
        (Some(plan), Some(pred)) => {
            Some(StabilizationObserver::new(graph, plan, pred).map_err(|e| e.to_string())?)
        }
        _ => None,
    };
    loop {
        if job.cancel_requested() {
            return Ok(None);
        }
        let base = last.as_ref().map(|s| s.boundary()).unwrap_or(0);
        let target = match base.checked_div(cadence) {
            None => total,
            Some(q) => (q + 1).saturating_mul(cadence).min(total),
        };
        if target <= base {
            return Err(format!(
                "seed {seed}: resume boundary {base} already at or past the budget {total}"
            ));
        }
        let mut observer = StreamObserver {
            protocol,
            job,
            metrics,
            seed,
            jobs_dir,
            events_every: spec.events_every,
            throttle: spec.throttle,
            latest: None,
            stab: stab.as_mut(),
        };
        let mut sim = Simulation::sync(protocol, graph)
            .seed(seed)
            .budget(target)
            .observe(&mut observer);
        if cadence > 0 {
            sim = sim.checkpoint_every(cadence);
        }
        if let Some(snap) = last.as_deref() {
            sim = sim.resume_from(snap);
        }
        if let Some(plan) = spec.churn.as_ref() {
            sim = sim.with_churn(plan);
        }
        if let Some(plan) = spec.faults.as_ref() {
            sim = sim.with_faults(plan);
        }
        #[cfg(feature = "parallel")]
        if spec.workers > 1 {
            sim = sim.parallel(
                stoneage_sim::ParallelPolicy::forced(
                    spec.workers,
                    stoneage_sim::MergeStrategy::default(),
                )
                .with_scheduler(spec.scheduler),
            );
        }
        let run = sim.run();
        let captured = observer.latest.take();
        match run {
            Ok(outcome) => {
                Metrics::add(&metrics.chunks, outcome.steals.chunks);
                Metrics::add(&metrics.chunks_stolen, outcome.steals.steals);
                if let Some(st) = stab.as_ref() {
                    emit_stabilization(job, metrics, seed, st);
                }
                let rounds = outcome.rounds().unwrap_or(0);
                let messages = outcome.messages_sent().unwrap_or(0);
                return Ok(Some(SeedResult {
                    seed,
                    fingerprint: outcome_fingerprint(&outcome.outputs, rounds, messages),
                    rounds,
                    messages,
                }));
            }
            Err(ExecError::RoundLimit { .. }) if target < total => match captured {
                Some(snap) => last = Some(snap),
                // checkpoint_every(cadence) guarantees a boundary frame at
                // every segment end, so this is unreachable in practice.
                None => {
                    return Err(format!(
                        "seed {seed}: segment ended at round {target} without a checkpoint"
                    ))
                }
            },
            Err(ExecError::RoundLimit { .. }) if run_to_budget => {
                // Non-terminating workloads (blinker) are *expected* to
                // hit the budget; report rounds-only results.
                if let Some(st) = stab.as_ref() {
                    emit_stabilization(job, metrics, seed, st);
                }
                return Ok(Some(SeedResult {
                    seed,
                    fingerprint: outcome_fingerprint(&[], total, 0),
                    rounds: total,
                    messages: 0,
                }));
            }
            Err(e) => {
                if let Some(st) = stab.as_ref() {
                    emit_stabilization(job, metrics, seed, st);
                }
                // The latest snapshot stays downloadable: a budget-limited
                // job can be resumed with a larger budget.
                return Err(format!("seed {seed}: {e}"));
            }
        }
    }
}

/// The per-segment observer: forwards rounds to the stabilization
/// replica, throttles, emits `round`/`checkpoint` NDJSON events, and
/// persists + publishes checkpoint frames.
struct StreamObserver<'a, P: Protocol> {
    protocol: &'a P,
    job: &'a Job,
    metrics: &'a Metrics,
    seed: u64,
    jobs_dir: Option<&'a Path>,
    events_every: u64,
    throttle: Duration,
    latest: Option<Arc<Snapshot>>,
    stab: Option<&'a mut StabilizationObserver<Pred<P::State>>>,
}

impl<P: Protocol> Observer<P::State> for StreamObserver<'_, P> {
    fn on_round_end(&mut self, round: u64, states: &[P::State]) {
        if let Some(stab) = self.stab.as_mut() {
            stab.on_round_end(round, states);
        }
        Metrics::inc(&self.metrics.rounds);
        if !self.throttle.is_zero() {
            std::thread::sleep(self.throttle);
        }
        if self.events_every != 0 && round.is_multiple_of(self.events_every) {
            let undecided = states
                .iter()
                .filter(|s| self.protocol.output(s).is_none())
                .count();
            emit(
                self.job,
                self.metrics,
                Value::Object(vec![
                    ("type".into(), "round".into()),
                    ("seed".into(), self.seed.into()),
                    ("round".into(), round.into()),
                    ("undecided".into(), undecided.into()),
                ]),
            );
        }
    }

    fn on_checkpoint(&mut self, snapshot: &Snapshot) {
        let frame = Arc::new(snapshot.clone());
        let mut persisted = Value::Null;
        if let Some(dir) = self.jobs_dir {
            match persist_frame(dir, self.job.id, &frame) {
                Ok((path, bytes)) => {
                    Metrics::add(&self.metrics.snapshot_bytes, bytes);
                    persisted = path.display().to_string().into();
                }
                Err(e) => {
                    // Persistence is best-effort; the in-memory frame
                    // still serves `GET /jobs/{id}/snapshot`.
                    emit(
                        self.job,
                        self.metrics,
                        Value::Object(vec![
                            ("type".into(), "persist_error".into()),
                            ("error".into(), e.to_string().into()),
                        ]),
                    );
                }
            }
        }
        self.job.set_snapshot(frame.clone());
        self.latest = Some(frame);
        Metrics::inc(&self.metrics.checkpoints);
        emit(
            self.job,
            self.metrics,
            Value::Object(vec![
                ("type".into(), "checkpoint".into()),
                ("seed".into(), self.seed.into()),
                ("boundary".into(), snapshot.boundary().into()),
                ("persisted".into(), persisted),
            ]),
        );
    }
}

/// Writes the frame to `<dir>/job-<id>/latest.snap` via the atomic
/// write-validate-rename helper; returns the path and the frame size.
fn persist_frame(
    dir: &Path,
    id: u64,
    frame: &Snapshot,
) -> Result<(PathBuf, u64), Box<dyn std::error::Error>> {
    let job_dir = dir.join(format!("job-{id}"));
    std::fs::create_dir_all(&job_dir)?;
    let path = job_dir.join("latest.snap");
    write_snapshot_file(&path, frame)?;
    let bytes = frame.to_bytes().len() as u64;
    Ok((path, bytes))
}

/// Emits one `stabilization` event per churn record collected so far.
fn emit_stabilization<F>(job: &Job, metrics: &Metrics, seed: u64, stab: &StabilizationObserver<F>) {
    for record in stab.records() {
        emit(
            job,
            metrics,
            Value::Object(vec![
                ("type".into(), "stabilization".into()),
                ("seed".into(), seed.into()),
                ("at_round".into(), record.at_round.into()),
                ("event".into(), format!("{:?}", record.event).into()),
                (
                    "restabilized_after".into(),
                    record
                        .restabilized_after
                        .map(Value::from)
                        .unwrap_or(Value::Null),
                ),
            ]),
        );
    }
}

/// Pushes one event line onto the job's log and bumps the counter.
fn emit(job: &Job, metrics: &Metrics, event: Value) {
    job.events.push(event.to_string_compact());
    Metrics::inc(&metrics.events);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_length_sensitive() {
        let a = outcome_fingerprint(&[1, 0, 1], 9, 40);
        assert_eq!(a, outcome_fingerprint(&[1, 0, 1], 9, 40));
        assert_ne!(a, outcome_fingerprint(&[1, 1, 0], 9, 40));
        assert_ne!(a, outcome_fingerprint(&[1, 0, 1], 10, 40));
        assert_ne!(a, outcome_fingerprint(&[1, 0, 1], 9, 41));
        assert_ne!(a, outcome_fingerprint(&[1, 0, 1, 0], 9, 40));
        assert_ne!(outcome_fingerprint(&[], 0, 0), 0);
    }

    #[test]
    fn blinker_table_builds_and_never_outputs() {
        let table = blinker();
        let multi = AsMulti(table);
        let q0 = multi.initial_state(0);
        assert!(multi.output(&q0).is_none());
    }
}
