//! Prometheus text-format metrics for the `/metrics` endpoint.
//!
//! Plain atomics — no metrics crate exists in the offline environment,
//! and the exposition format (version 0.0.4) is simple enough to render
//! by hand. Counters are monotonic over the server's lifetime; gauges
//! (jobs by state, queue depth, rounds/sec) are computed at scrape time.

use crate::job::JobStore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Shared counters, updated by HTTP handlers and job runners.
pub struct Metrics {
    started: Instant,
    /// HTTP requests handled (any route, any status).
    pub http_requests: AtomicU64,
    /// Jobs accepted by `POST /jobs`.
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached a terminal state.
    pub jobs_completed: AtomicU64,
    /// Simulation rounds executed, across all jobs and seeds.
    pub rounds: AtomicU64,
    /// NDJSON events emitted to job logs.
    pub events: AtomicU64,
    /// Checkpoints captured.
    pub checkpoints: AtomicU64,
    /// Bytes of snapshot frames persisted to the jobs dir.
    pub snapshot_bytes: AtomicU64,
    /// Work-stealing chunk descriptors executed (zero on static-schedule
    /// and serial runs).
    pub chunks: AtomicU64,
    /// Chunks executed by a worker other than their shard's owner — the
    /// imbalance the stealing scheduler absorbed.
    pub chunks_stolen: AtomicU64,
    /// Jobs currently waiting for cores (maintained by the orchestrator).
    pub queue_depth: AtomicUsize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            started: Instant::now(),
            http_requests: AtomicU64::new(0),
            jobs_submitted: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            events: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            snapshot_bytes: AtomicU64::new(0),
            chunks: AtomicU64::new(0),
            chunks_stolen: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
        }
    }
}

impl Metrics {
    /// Adds one to a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Renders the Prometheus text exposition.
    pub fn render(&self, store: &JobStore) -> String {
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "stoneage_server_http_requests_total",
            "HTTP requests handled.",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "stoneage_server_jobs_submitted_total",
            "Jobs accepted for execution.",
            self.jobs_submitted.load(Ordering::Relaxed),
        );
        counter(
            "stoneage_server_jobs_completed_total",
            "Jobs that reached a terminal state.",
            self.jobs_completed.load(Ordering::Relaxed),
        );
        let rounds = self.rounds.load(Ordering::Relaxed);
        counter(
            "stoneage_server_rounds_total",
            "Simulation rounds executed across all jobs.",
            rounds,
        );
        counter(
            "stoneage_server_events_total",
            "Observer events emitted to job streams.",
            self.events.load(Ordering::Relaxed),
        );
        counter(
            "stoneage_server_checkpoints_total",
            "Snapshot checkpoints captured.",
            self.checkpoints.load(Ordering::Relaxed),
        );
        counter(
            "stoneage_server_snapshot_bytes_total",
            "Snapshot frame bytes persisted to the jobs dir.",
            self.snapshot_bytes.load(Ordering::Relaxed),
        );
        let chunks = self.chunks.load(Ordering::Relaxed);
        let stolen = self.chunks_stolen.load(Ordering::Relaxed);
        counter(
            "stoneage_server_chunks_total",
            "Work-stealing chunk descriptors executed across all jobs.",
            chunks,
        );
        counter(
            "stoneage_server_chunks_stolen_total",
            "Chunks executed by a non-owner worker (schedule imbalance absorbed).",
            stolen,
        );

        let counts = store.counts();
        out.push_str(
            "# HELP stoneage_server_jobs Jobs retained in the store, by state.\n\
             # TYPE stoneage_server_jobs gauge\n",
        );
        for (state, count) in ["queued", "running", "done", "failed", "cancelled"]
            .iter()
            .zip(counts)
        {
            out.push_str(&format!(
                "stoneage_server_jobs{{state=\"{state}\"}} {count}\n"
            ));
        }
        let mut gauge = |name: &str, help: &str, value: f64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
            ));
        };
        gauge(
            "stoneage_server_queue_depth",
            "Jobs waiting for cores.",
            self.queue_depth.load(Ordering::Relaxed) as f64,
        );
        let uptime = self.started.elapsed().as_secs_f64();
        gauge(
            "stoneage_server_uptime_seconds",
            "Seconds since the server started.",
            uptime,
        );
        gauge(
            "stoneage_server_rounds_per_second",
            "Lifetime average simulation rounds per second.",
            if uptime > 0.0 {
                rounds as f64 / uptime
            } else {
                0.0
            },
        );
        gauge(
            "stoneage_server_steal_ratio",
            "Lifetime fraction of chunks executed by a non-owner worker.",
            if chunks > 0 {
                stolen as f64 / chunks as f64
            } else {
                0.0
            },
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_prometheus_text() {
        let metrics = Metrics::default();
        Metrics::inc(&metrics.http_requests);
        Metrics::add(&metrics.rounds, 42);
        Metrics::add(&metrics.chunks, 8);
        Metrics::add(&metrics.chunks_stolen, 2);
        let store = JobStore::new(4);
        let text = metrics.render(&store);
        assert!(text.contains("# TYPE stoneage_server_http_requests_total counter"));
        assert!(text.contains("stoneage_server_http_requests_total 1"));
        assert!(text.contains("stoneage_server_rounds_total 42"));
        assert!(text.contains("stoneage_server_chunks_total 8"));
        assert!(text.contains("stoneage_server_chunks_stolen_total 2"));
        assert!(text.contains("stoneage_server_steal_ratio 0.25"));
        assert!(text.contains("stoneage_server_jobs{state=\"queued\"} 0"));
        assert!(text.contains("# TYPE stoneage_server_queue_depth gauge"));
        // Every line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, v)| !name.is_empty() && v.parse::<f64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
    }
}
