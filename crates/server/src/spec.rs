//! Job-spec parsing: JSON body → typed [`JobSpec`], with a typed error
//! for every malformed field instead of a panic.
//!
//! The graph-spec half predates the server conceptually — the generators
//! in `stoneage_graph` assert on bad parameters (`gnp` panics on
//! `p ∉ [0, 1]`), which is correct for library misuse but not for an
//! HTTP API fed by clients. [`GraphSpec::parse`] therefore validates
//! every parameter up front and reports [`SpecError`]s that the server
//! maps to 400 responses (and that convert into
//! [`stoneage_sim::ExecError::Config`] for non-HTTP callers).

use std::time::Duration;
use stoneage_core::Letter;
use stoneage_graph::{generators, Graph, NodeId, TopologyEvent};
use stoneage_sim::{ChunkScheduler, ChurnPlan, ExecError, FaultPlan};
use stoneage_wire::{parse, JsonError, Value};

/// Ceiling on `n` (or `rows * cols`) so a single request cannot ask the
/// server to materialize an absurd graph.
pub const MAX_NODES: usize = 1_000_000;
/// Ceiling on the seed matrix per job.
pub const MAX_SEEDS: usize = 64;
/// Ceiling on the per-round throttle, so a job cannot stall a core
/// indefinitely between cancellation points.
pub const MAX_THROTTLE_MS: u64 = 1_000;

/// A malformed job spec. Every variant names the offending field.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The request body is not valid JSON.
    Json(JsonError),
    /// The top level is not a JSON object.
    NotAnObject,
    /// A required field is absent.
    Missing(&'static str),
    /// A present field has the wrong type or an out-of-range value.
    Invalid {
        /// The offending field.
        field: &'static str,
        /// Human-readable constraint that was violated.
        reason: String,
    },
}

impl SpecError {
    fn invalid(field: &'static str, reason: impl Into<String>) -> SpecError {
        SpecError::Invalid {
            field,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "body is not valid JSON: {e}"),
            SpecError::NotAnObject => write!(f, "job spec must be a JSON object"),
            SpecError::Missing(field) => write!(f, "missing required field {field:?}"),
            SpecError::Invalid { field, reason } => write!(f, "field {field:?}: {reason}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<JsonError> for SpecError {
    fn from(e: JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl From<SpecError> for ExecError {
    fn from(e: SpecError) -> Self {
        ExecError::Config {
            reason: e.to_string(),
        }
    }
}

/// A validated graph family + parameters, buildable without panicking.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Node count (`1..=MAX_NODES`).
        n: usize,
        /// Edge probability (finite, in `[0, 1]`).
        p: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Uniform random tree on `n` nodes.
    Tree {
        /// Node count (`1..=MAX_NODES`).
        n: usize,
        /// Generator seed.
        seed: u64,
    },
    /// `rows × cols` grid.
    Grid {
        /// Row count (`>= 1`).
        rows: usize,
        /// Column count (`>= 1`).
        cols: usize,
    },
    /// Power-law (preferential-attachment via redirection) graph — the
    /// skewed family the work-stealing scheduler targets.
    PowerLaw {
        /// Node count (`m + 1 ..= MAX_NODES`).
        n: usize,
        /// Attachments per new node (`>= 1`, `< n`).
        m: usize,
        /// Redirection probability (finite, in `[0, 1]`); degree
        /// exponent `γ ≈ 1 + 1/redirect`.
        redirect: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Hub clique with pendant leaves — the deterministic scheduling
    /// stress family.
    HubAndSpoke {
        /// Hub count (`>= 1`).
        hubs: usize,
        /// Pendant leaves per hub (`>= 0`).
        spokes: usize,
    },
}

impl GraphSpec {
    /// Parses the `"graph"` object of a job spec.
    pub fn parse(v: &Value) -> Result<GraphSpec, SpecError> {
        let family = v
            .get("family")
            .ok_or(SpecError::Missing("graph.family"))?
            .as_str()
            .ok_or_else(|| SpecError::invalid("graph.family", "must be a string"))?;
        match family {
            "gnp" => {
                let n = node_count(v, "graph.n")?;
                let p = v
                    .get("p")
                    .ok_or(SpecError::Missing("graph.p"))?
                    .as_f64()
                    .ok_or_else(|| SpecError::invalid("graph.p", "must be a number"))?;
                if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                    return Err(SpecError::invalid(
                        "graph.p",
                        format!("must be a probability in [0, 1], got {p}"),
                    ));
                }
                let seed = u64_field(v, "seed", "graph.seed")?.unwrap_or(0);
                Ok(GraphSpec::Gnp { n, p, seed })
            }
            "tree" => {
                let n = node_count(v, "graph.n")?;
                let seed = u64_field(v, "seed", "graph.seed")?.unwrap_or(0);
                Ok(GraphSpec::Tree { n, seed })
            }
            "grid" => {
                let rows = dim(v, "rows", "graph.rows")?;
                let cols = dim(v, "cols", "graph.cols")?;
                if rows.saturating_mul(cols) > MAX_NODES {
                    return Err(SpecError::invalid(
                        "graph.rows",
                        format!("rows * cols exceeds {MAX_NODES}"),
                    ));
                }
                Ok(GraphSpec::Grid { rows, cols })
            }
            "power_law" => {
                let n = node_count(v, "graph.n")?;
                let m = dim(v, "m", "graph.m")?;
                if m >= n {
                    return Err(SpecError::invalid(
                        "graph.m",
                        format!("must be smaller than n (= {n}), got {m}"),
                    ));
                }
                let redirect = match v.get("redirect") {
                    None => 0.9,
                    Some(r) => r
                        .as_f64()
                        .ok_or_else(|| SpecError::invalid("graph.redirect", "must be a number"))?,
                };
                if !redirect.is_finite() || !(0.0..=1.0).contains(&redirect) {
                    return Err(SpecError::invalid(
                        "graph.redirect",
                        format!("must be a probability in [0, 1], got {redirect}"),
                    ));
                }
                let seed = u64_field(v, "seed", "graph.seed")?.unwrap_or(0);
                Ok(GraphSpec::PowerLaw {
                    n,
                    m,
                    redirect,
                    seed,
                })
            }
            "hub_and_spoke" => {
                let hubs = dim(v, "hubs", "graph.hubs")?;
                let spokes = u64_field(v, "spokes", "graph.spokes")?.unwrap_or(0) as usize;
                if hubs.saturating_mul(spokes + 1) > MAX_NODES {
                    return Err(SpecError::invalid(
                        "graph.hubs",
                        format!("hubs * (spokes + 1) exceeds {MAX_NODES}"),
                    ));
                }
                Ok(GraphSpec::HubAndSpoke { hubs, spokes })
            }
            other => Err(SpecError::invalid(
                "graph.family",
                format!(
                    "unknown family {other:?} (expected gnp, tree, grid, power_law, or \
                     hub_and_spoke)"
                ),
            )),
        }
    }

    /// Materializes the graph. Infallible: every parameter the
    /// generators assert on was validated by [`GraphSpec::parse`].
    pub fn build(&self) -> Graph {
        match *self {
            GraphSpec::Gnp { n, p, seed } => generators::gnp(n, p, seed),
            GraphSpec::Tree { n, seed } => generators::random_tree(n, seed),
            GraphSpec::Grid { rows, cols } => generators::grid(rows, cols),
            GraphSpec::PowerLaw {
                n,
                m,
                redirect,
                seed,
            } => generators::power_law(n, m, redirect, seed),
            GraphSpec::HubAndSpoke { hubs, spokes } => generators::hub_and_spoke(hubs, spokes),
        }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        match *self {
            GraphSpec::Gnp { n, .. }
            | GraphSpec::Tree { n, .. }
            | GraphSpec::PowerLaw { n, .. } => n,
            GraphSpec::Grid { rows, cols } => rows * cols,
            GraphSpec::HubAndSpoke { hubs, spokes } => hubs * (spokes + 1),
        }
    }
}

/// The protocols a job can run, by wire id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolId {
    /// The paper's MIS tournament (Section 4).
    Mis,
    /// The paper's tree 3-coloring (Section 5).
    Coloring,
    /// Self-stabilizing MIS wrapper.
    SelfStabMis,
    /// Self-stabilizing coloring wrapper.
    SelfStabColoring,
    /// The non-terminating 2-state blinker (benchmark workload).
    Blinker,
}

impl ProtocolId {
    /// Parses a wire id (`"mis"`, `"coloring"`, `"selfstab_mis"`,
    /// `"selfstab_coloring"`, `"blinker"`).
    pub fn parse(s: &str) -> Option<ProtocolId> {
        match s {
            "mis" => Some(ProtocolId::Mis),
            "coloring" => Some(ProtocolId::Coloring),
            "selfstab_mis" => Some(ProtocolId::SelfStabMis),
            "selfstab_coloring" => Some(ProtocolId::SelfStabColoring),
            "blinker" => Some(ProtocolId::Blinker),
            _ => None,
        }
    }

    /// The wire id.
    pub fn as_str(self) -> &'static str {
        match self {
            ProtocolId::Mis => "mis",
            ProtocolId::Coloring => "coloring",
            ProtocolId::SelfStabMis => "selfstab_mis",
            ProtocolId::SelfStabColoring => "selfstab_coloring",
            ProtocolId::Blinker => "blinker",
        }
    }
}

/// A fully validated simulation job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The topology to run on.
    pub graph: GraphSpec,
    /// The protocol to run.
    pub protocol: ProtocolId,
    /// Seed matrix: one complete run per seed.
    pub seeds: Vec<u64>,
    /// Round budget per seed.
    pub budget: u64,
    /// Checkpoint cadence in rounds (`0` = no checkpoints; required for
    /// mid-run cancellation, snapshot download, and resume).
    pub checkpoint_every: u64,
    /// Emit a `round` stream event every this many rounds (`0` = none).
    pub events_every: u64,
    /// Worker cores this job occupies in the scheduler (and, on
    /// `parallel` builds, the `ParallelPolicy` worker count).
    pub workers: usize,
    /// Chunk-to-worker assignment on `parallel` builds with
    /// `workers > 1` (`"static"` or `"stealing"`); ignored otherwise.
    pub scheduler: ChunkScheduler,
    /// Artificial per-round delay, for demos and deterministic
    /// mid-run cancellation in tests.
    pub throttle: Duration,
    /// Optional topology fault-injection plan.
    pub churn: Option<ChurnPlan>,
    /// Optional message fault-injection plan.
    pub faults: Option<FaultPlan>,
    /// Optional snapshot frame (decoded from hex) to resume from;
    /// restricted to single-seed jobs.
    pub resume_from: Option<Vec<u8>>,
}

/// Parses and validates a JSON job-spec body.
pub fn parse_spec(body: &[u8]) -> Result<JobSpec, SpecError> {
    let text =
        std::str::from_utf8(body).map_err(|_| SpecError::invalid("body", "must be UTF-8 JSON"))?;
    let v = parse(text)?;
    if !matches!(v, Value::Object(_)) {
        return Err(SpecError::NotAnObject);
    }

    let graph = GraphSpec::parse(v.get("graph").ok_or(SpecError::Missing("graph"))?)?;

    let protocol_str = v
        .get("protocol")
        .ok_or(SpecError::Missing("protocol"))?
        .as_str()
        .ok_or_else(|| SpecError::invalid("protocol", "must be a string"))?;
    let protocol = ProtocolId::parse(protocol_str).ok_or_else(|| {
        SpecError::invalid(
            "protocol",
            format!(
                "unknown protocol {protocol_str:?} (expected mis, coloring, selfstab_mis, \
                 selfstab_coloring, or blinker)"
            ),
        )
    })?;

    let seeds = match v.get("seeds") {
        None => vec![0],
        Some(Value::Array(items)) => {
            if items.is_empty() {
                return Err(SpecError::invalid("seeds", "must not be empty"));
            }
            if items.len() > MAX_SEEDS {
                return Err(SpecError::invalid(
                    "seeds",
                    format!("at most {MAX_SEEDS} seeds per job"),
                ));
            }
            items
                .iter()
                .map(|s| {
                    s.as_i64()
                        .filter(|&x| x >= 0)
                        .map(|x| x as u64)
                        .ok_or_else(|| {
                            SpecError::invalid("seeds", "every seed must be a non-negative integer")
                        })
                })
                .collect::<Result<Vec<u64>, SpecError>>()?
        }
        Some(_) => return Err(SpecError::invalid("seeds", "must be an array of integers")),
    };

    let budget = u64_field(&v, "budget", "budget")?.unwrap_or(100_000);
    if budget == 0 {
        return Err(SpecError::invalid("budget", "must be at least 1"));
    }
    let checkpoint_every = u64_field(&v, "checkpoint_every", "checkpoint_every")?.unwrap_or(0);
    let events_every = u64_field(&v, "events_every", "events_every")?.unwrap_or(0);

    let workers = u64_field(&v, "workers", "workers")?.unwrap_or(1);
    if !(1..=128).contains(&workers) {
        return Err(SpecError::invalid("workers", "must be in 1..=128"));
    }

    let scheduler = match v.get("scheduler") {
        None => ChunkScheduler::Static,
        Some(s) => {
            let s = s
                .as_str()
                .ok_or_else(|| SpecError::invalid("scheduler", "must be a string"))?;
            match s {
                "static" => ChunkScheduler::Static,
                "stealing" => ChunkScheduler::Stealing,
                other => {
                    return Err(SpecError::invalid(
                        "scheduler",
                        format!("unknown scheduler {other:?} (expected static or stealing)"),
                    ))
                }
            }
        }
    };

    let throttle_ms = u64_field(&v, "throttle_ms", "throttle_ms")?.unwrap_or(0);
    if throttle_ms > MAX_THROTTLE_MS {
        return Err(SpecError::invalid(
            "throttle_ms",
            format!("at most {MAX_THROTTLE_MS}"),
        ));
    }

    let n = graph.node_count();
    let churn = match v.get("churn") {
        None => None,
        Some(c) => Some(parse_churn(c, n)?),
    };
    let faults = match v.get("faults") {
        None => None,
        Some(fa) => Some(parse_faults(fa)?),
    };

    let resume_from = match v.get("resume_from") {
        None => None,
        Some(r) => {
            let hex = r
                .as_str()
                .ok_or_else(|| SpecError::invalid("resume_from", "must be a hex string"))?;
            if seeds.len() != 1 {
                return Err(SpecError::invalid(
                    "resume_from",
                    "resume is restricted to single-seed jobs",
                ));
            }
            Some(decode_hex(hex).ok_or_else(|| {
                SpecError::invalid("resume_from", "must be an even-length hex string")
            })?)
        }
    };

    Ok(JobSpec {
        graph,
        protocol,
        seeds,
        budget,
        checkpoint_every,
        events_every,
        workers: workers as usize,
        scheduler,
        throttle: Duration::from_millis(throttle_ms),
        churn,
        faults,
        resume_from,
    })
}

/// Parses the `"churn"` array: `[{"round": R, "event": E, ...}, ...]`
/// with events `crash`/`restart` (`"node"`) and
/// `edge_insert`/`edge_delete` (`"u"`, `"v"`), plus an optional sibling
/// shape `{"events": [...], "extra_edges": [[u, v], ...]}`.
fn parse_churn(v: &Value, n: usize) -> Result<ChurnPlan, SpecError> {
    let (events, extra_edges) = match v {
        Value::Array(items) => (items.as_slice(), None),
        Value::Object(_) => {
            let events = match v.get("events") {
                Some(Value::Array(items)) => items.as_slice(),
                Some(_) => {
                    return Err(SpecError::invalid("churn.events", "must be an array"));
                }
                None => &[],
            };
            (events, v.get("extra_edges"))
        }
        _ => {
            return Err(SpecError::invalid(
                "churn",
                "must be an array of events or an object",
            ));
        }
    };

    let mut plan = ChurnPlan::new();
    for ev in events {
        let round =
            u64_field(ev, "round", "churn[].round")?.ok_or(SpecError::Missing("churn[].round"))?;
        let kind = ev
            .get("event")
            .ok_or(SpecError::Missing("churn[].event"))?
            .as_str()
            .ok_or_else(|| SpecError::invalid("churn[].event", "must be a string"))?;
        let event = match kind {
            "crash" => TopologyEvent::Crash(node_id(ev, "node", n)?),
            "restart" => TopologyEvent::Restart(node_id(ev, "node", n)?),
            "edge_insert" => TopologyEvent::EdgeInsert(node_id(ev, "u", n)?, node_id(ev, "v", n)?),
            "edge_delete" => TopologyEvent::EdgeDelete(node_id(ev, "u", n)?, node_id(ev, "v", n)?),
            other => {
                return Err(SpecError::invalid(
                    "churn[].event",
                    format!(
                        "unknown event {other:?} (expected crash, restart, edge_insert, or \
                         edge_delete)"
                    ),
                ));
            }
        };
        plan = plan.at(round, event);
    }
    if let Some(extra) = extra_edges {
        let items = extra
            .as_array()
            .ok_or_else(|| SpecError::invalid("churn.extra_edges", "must be an array of pairs"))?;
        for pair in items {
            match pair.as_array() {
                Some([u, v]) => {
                    let u = pair_node(u, "churn.extra_edges", n)?;
                    let v = pair_node(v, "churn.extra_edges", n)?;
                    plan = plan.with_extra_edge(u, v);
                }
                _ => {
                    return Err(SpecError::invalid(
                        "churn.extra_edges",
                        "every entry must be a [u, v] pair",
                    ));
                }
            }
        }
    }
    Ok(plan)
}

/// Parses the `"faults"` object:
/// `{"seed": S, "drop": rate, "duplicate": [rate, copies], "corrupt": [rate, letter]}`.
fn parse_faults(v: &Value) -> Result<FaultPlan, SpecError> {
    if !matches!(v, Value::Object(_)) {
        return Err(SpecError::invalid("faults", "must be an object"));
    }
    let seed = u64_field(v, "seed", "faults.seed")?.unwrap_or(0);
    let mut plan = FaultPlan::new(seed);
    if let Some(d) = v.get("drop") {
        plan = plan.drop_rate(rate(d, "faults.drop")?);
    }
    if let Some(d) = v.get("duplicate") {
        match d.as_array() {
            Some([r, copies]) => {
                let copies = copies
                    .as_i64()
                    .filter(|&c| (1..=8).contains(&c))
                    .ok_or_else(|| {
                        SpecError::invalid("faults.duplicate", "copies must be in 1..=8")
                    })?;
                plan = plan.duplicate_rate(rate(r, "faults.duplicate")?, copies as u8);
            }
            _ => {
                return Err(SpecError::invalid(
                    "faults.duplicate",
                    "must be a [rate, copies] pair",
                ));
            }
        }
    }
    if let Some(c) = v.get("corrupt") {
        match c.as_array() {
            Some([r, letter]) => {
                let letter = letter
                    .as_i64()
                    .filter(|&l| (0..=u64::from(u16::MAX) as i64).contains(&l))
                    .ok_or_else(|| {
                        SpecError::invalid("faults.corrupt", "letter must be a u16 index")
                    })?;
                plan = plan.corrupt_rate(rate(r, "faults.corrupt")?, Letter(letter as u16));
            }
            _ => {
                return Err(SpecError::invalid(
                    "faults.corrupt",
                    "must be a [rate, letter] pair",
                ));
            }
        }
    }
    Ok(plan)
}

fn rate(v: &Value, field: &'static str) -> Result<f64, SpecError> {
    let r = v
        .as_f64()
        .ok_or_else(|| SpecError::invalid(field, "rate must be a number"))?;
    if !r.is_finite() || !(0.0..=1.0).contains(&r) {
        return Err(SpecError::invalid(
            field,
            format!("rate must be in [0, 1], got {r}"),
        ));
    }
    Ok(r)
}

fn node_id(v: &Value, key: &'static str, n: usize) -> Result<NodeId, SpecError> {
    let id = v
        .get(key)
        .and_then(|x| x.as_i64())
        .filter(|&x| x >= 0)
        .ok_or_else(|| SpecError::invalid("churn[]", "node ids must be non-negative integers"))?;
    if (id as u64) >= n as u64 {
        return Err(SpecError::invalid(
            "churn[]",
            format!("node id {id} out of range for a {n}-node graph"),
        ));
    }
    Ok(id as NodeId)
}

fn pair_node(v: &Value, field: &'static str, n: usize) -> Result<NodeId, SpecError> {
    let id = v
        .as_i64()
        .filter(|&x| x >= 0 && (x as u64) < n as u64)
        .ok_or_else(|| SpecError::invalid(field, "node ids must be in-range integers"))?;
    Ok(id as NodeId)
}

fn u64_field(v: &Value, key: &'static str, field: &'static str) -> Result<Option<u64>, SpecError> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_i64()
            .filter(|&x| x >= 0)
            .map(|x| Some(x as u64))
            .ok_or_else(|| SpecError::invalid(field, "must be a non-negative integer")),
    }
}

fn node_count(v: &Value, field: &'static str) -> Result<usize, SpecError> {
    let n = v
        .get("n")
        .ok_or(SpecError::Missing(field))?
        .as_i64()
        .filter(|&n| n >= 1 && n <= MAX_NODES as i64)
        .ok_or_else(|| SpecError::invalid(field, format!("must be in 1..={MAX_NODES}")))?;
    Ok(n as usize)
}

fn dim(v: &Value, key: &'static str, field: &'static str) -> Result<usize, SpecError> {
    let d = v
        .get(key)
        .ok_or(SpecError::Missing(field))?
        .as_i64()
        .filter(|&d| d >= 1 && d <= MAX_NODES as i64)
        .ok_or_else(|| SpecError::invalid(field, format!("must be in 1..={MAX_NODES}")))?;
    Ok(d as usize)
}

/// Encodes bytes as lowercase hex (the `resume_from`/snapshot-download
/// wire encoding).
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes an even-length hex string (`None` on any malformed input).
pub fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digit = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        out.push((digit(pair[0])? << 4) | digit(pair[1])?);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(json: &str) -> Result<JobSpec, SpecError> {
        parse_spec(json.as_bytes())
    }

    const MINIMAL: &str = r#"{"graph": {"family": "gnp", "n": 16, "p": 0.2, "seed": 1},
                              "protocol": "mis"}"#;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = spec(MINIMAL).unwrap();
        assert_eq!(
            s.graph,
            GraphSpec::Gnp {
                n: 16,
                p: 0.2,
                seed: 1
            }
        );
        assert_eq!(s.protocol, ProtocolId::Mis);
        assert_eq!(s.seeds, vec![0]);
        assert_eq!(s.budget, 100_000);
        assert_eq!(s.checkpoint_every, 0);
        assert_eq!(s.workers, 1);
        assert_eq!(s.scheduler, ChunkScheduler::Static);
        assert!(s.churn.is_none() && s.faults.is_none() && s.resume_from.is_none());
    }

    #[test]
    fn every_family_builds_the_graph_it_names() {
        let g = GraphSpec::Gnp {
            n: 10,
            p: 0.5,
            seed: 7,
        }
        .build();
        assert_eq!(g.node_count(), 10);
        let g = GraphSpec::Tree { n: 12, seed: 3 }.build();
        assert_eq!(g.node_count(), 12);
        let g = GraphSpec::Grid { rows: 3, cols: 4 }.build();
        assert_eq!(g.node_count(), 12);
        let spec = GraphSpec::PowerLaw {
            n: 40,
            m: 2,
            redirect: 0.9,
            seed: 5,
        };
        assert_eq!(spec.build().node_count(), spec.node_count());
        let spec = GraphSpec::HubAndSpoke { hubs: 3, spokes: 5 };
        assert_eq!(spec.build().node_count(), spec.node_count());
    }

    #[test]
    fn skewed_families_parse_and_reject() {
        let ok = r#"{"graph": {"family": "power_law", "n": 50, "m": 2,
                               "redirect": 0.8, "seed": 4},
                     "protocol": "mis"}"#;
        assert_eq!(
            spec(ok).unwrap().graph,
            GraphSpec::PowerLaw {
                n: 50,
                m: 2,
                redirect: 0.8,
                seed: 4
            }
        );
        // redirect defaults to the hub-heavy 0.9.
        let defaulted = r#"{"graph": {"family": "power_law", "n": 50, "m": 1},
                            "protocol": "mis"}"#;
        assert!(matches!(
            spec(defaulted).unwrap().graph,
            GraphSpec::PowerLaw { redirect, .. } if redirect == 0.9
        ));
        // m >= n would panic in the generator; rejected up front.
        let fat_m = r#"{"graph": {"family": "power_law", "n": 3, "m": 3},
                        "protocol": "mis"}"#;
        assert!(matches!(
            spec(fat_m),
            Err(SpecError::Invalid {
                field: "graph.m",
                ..
            })
        ));
        let bad_redirect = r#"{"graph": {"family": "power_law", "n": 9, "m": 1,
                                         "redirect": 1.5},
                               "protocol": "mis"}"#;
        assert!(matches!(
            spec(bad_redirect),
            Err(SpecError::Invalid {
                field: "graph.redirect",
                ..
            })
        ));

        let hub = r#"{"graph": {"family": "hub_and_spoke", "hubs": 2, "spokes": 9},
                      "protocol": "mis"}"#;
        assert_eq!(
            spec(hub).unwrap().graph,
            GraphSpec::HubAndSpoke { hubs: 2, spokes: 9 }
        );
        let huge = format!(
            r#"{{"graph": {{"family": "hub_and_spoke", "hubs": 2, "spokes": {MAX_NODES}}},
                 "protocol": "mis"}}"#
        );
        assert!(matches!(
            spec(&huge),
            Err(SpecError::Invalid {
                field: "graph.hubs",
                ..
            })
        ));
    }

    #[test]
    fn scheduler_field_parses_and_rejects() {
        let stealing = r#"{"graph": {"family": "gnp", "n": 16, "p": 0.2},
                           "protocol": "mis", "workers": 4, "scheduler": "stealing"}"#;
        assert_eq!(spec(stealing).unwrap().scheduler, ChunkScheduler::Stealing);
        let static_ = r#"{"graph": {"family": "gnp", "n": 16, "p": 0.2},
                          "protocol": "mis", "scheduler": "static"}"#;
        assert_eq!(spec(static_).unwrap().scheduler, ChunkScheduler::Static);
        let unknown = r#"{"graph": {"family": "gnp", "n": 16, "p": 0.2},
                          "protocol": "mis", "scheduler": "chase-lev"}"#;
        assert!(matches!(
            spec(unknown),
            Err(SpecError::Invalid {
                field: "scheduler",
                ..
            })
        ));
        let not_a_string = r#"{"graph": {"family": "gnp", "n": 16, "p": 0.2},
                               "protocol": "mis", "scheduler": 1}"#;
        assert!(matches!(
            spec(not_a_string),
            Err(SpecError::Invalid {
                field: "scheduler",
                ..
            })
        ));
    }

    #[test]
    fn malformed_body_and_toplevel() {
        assert!(matches!(spec("{nope"), Err(SpecError::Json(_))));
        assert!(matches!(spec("[1, 2]"), Err(SpecError::NotAnObject)));
        assert!(matches!(spec("{}"), Err(SpecError::Missing("graph"))));
        assert!(matches!(
            parse_spec(&[0xFF, 0xFE]),
            Err(SpecError::Invalid { field: "body", .. })
        ));
    }

    #[test]
    fn malformed_graph_fields() {
        let missing_family = r#"{"graph": {"n": 4}, "protocol": "mis"}"#;
        assert!(matches!(
            spec(missing_family),
            Err(SpecError::Missing("graph.family"))
        ));
        let bad_family = r#"{"graph": {"family": "torus", "n": 4}, "protocol": "mis"}"#;
        assert!(matches!(
            spec(bad_family),
            Err(SpecError::Invalid {
                field: "graph.family",
                ..
            })
        ));
        let no_n = r#"{"graph": {"family": "gnp", "p": 0.5}, "protocol": "mis"}"#;
        assert!(matches!(spec(no_n), Err(SpecError::Missing("graph.n"))));
        let zero_n = r#"{"graph": {"family": "tree", "n": 0}, "protocol": "mis"}"#;
        assert!(matches!(
            spec(zero_n),
            Err(SpecError::Invalid {
                field: "graph.n",
                ..
            })
        ));
        let huge_n = r#"{"graph": {"family": "tree", "n": 2000000}, "protocol": "mis"}"#;
        assert!(matches!(
            spec(huge_n),
            Err(SpecError::Invalid {
                field: "graph.n",
                ..
            })
        ));
        // The gnp generator asserts on these; the parser must reject first.
        for bad_p in ["-0.1", "1.5", "1e400"] {
            let s = format!(
                r#"{{"graph": {{"family": "gnp", "n": 4, "p": {bad_p}}}, "protocol": "mis"}}"#
            );
            assert!(
                matches!(
                    spec(&s),
                    Err(SpecError::Invalid {
                        field: "graph.p",
                        ..
                    }) | Err(SpecError::Json(_))
                ),
                "p = {bad_p} must be rejected"
            );
        }
        let no_p = r#"{"graph": {"family": "gnp", "n": 4}, "protocol": "mis"}"#;
        assert!(matches!(spec(no_p), Err(SpecError::Missing("graph.p"))));
        let no_rows = r#"{"graph": {"family": "grid", "cols": 3}, "protocol": "mis"}"#;
        assert!(matches!(
            spec(no_rows),
            Err(SpecError::Missing("graph.rows"))
        ));
        let big_grid = r#"{"graph": {"family": "grid", "rows": 10000, "cols": 10000},
                           "protocol": "mis"}"#;
        assert!(matches!(
            spec(big_grid),
            Err(SpecError::Invalid {
                field: "graph.rows",
                ..
            })
        ));
    }

    #[test]
    fn malformed_protocol_seeds_budget_workers() {
        let bad_proto = r#"{"graph": {"family": "tree", "n": 4}, "protocol": "tsp"}"#;
        assert!(matches!(
            spec(bad_proto),
            Err(SpecError::Invalid {
                field: "protocol",
                ..
            })
        ));
        let no_proto = r#"{"graph": {"family": "tree", "n": 4}}"#;
        assert!(matches!(
            spec(no_proto),
            Err(SpecError::Missing("protocol"))
        ));
        let base = r#"{"graph": {"family": "tree", "n": 4}, "protocol": "mis""#;
        for (extra, field) in [
            (r#", "seeds": []"#, "seeds"),
            (r#", "seeds": [-1]"#, "seeds"),
            (r#", "seeds": "x""#, "seeds"),
            (r#", "budget": 0"#, "budget"),
            (r#", "budget": -5"#, "budget"),
            (r#", "workers": 0"#, "workers"),
            (r#", "workers": 500"#, "workers"),
            (r#", "throttle_ms": 99999"#, "throttle_ms"),
            (r#", "checkpoint_every": -1"#, "checkpoint_every"),
        ] {
            let s = format!("{base}{extra}}}");
            match spec(&s) {
                Err(SpecError::Invalid { field: f, .. }) => assert_eq!(f, field, "for {extra}"),
                other => panic!("{extra} must be Invalid({field}), got {other:?}"),
            }
        }
        let too_many = format!(
            r#"{{"graph": {{"family": "tree", "n": 4}}, "protocol": "mis", "seeds": [{}]}}"#,
            (0..=MAX_SEEDS)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(matches!(
            spec(&too_many),
            Err(SpecError::Invalid { field: "seeds", .. })
        ));
    }

    #[test]
    fn churn_and_fault_plans_parse_and_reject() {
        let ok = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                     "churn": [{"round": 3, "event": "crash", "node": 2},
                               {"round": 5, "event": "edge_delete", "u": 0, "v": 1}],
                     "faults": {"seed": 9, "drop": 0.01, "duplicate": [0.02, 2],
                                "corrupt": [0.005, 0]}}"#;
        let s = spec(ok).unwrap();
        assert!(s.churn.is_some() && s.faults.is_some());

        let bad_event = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                            "churn": [{"round": 3, "event": "meteor", "node": 2}]}"#;
        assert!(matches!(
            spec(bad_event),
            Err(SpecError::Invalid {
                field: "churn[].event",
                ..
            })
        ));
        let oob_node = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                           "churn": [{"round": 3, "event": "crash", "node": 8}]}"#;
        assert!(matches!(
            spec(oob_node),
            Err(SpecError::Invalid {
                field: "churn[]",
                ..
            })
        ));
        let no_round = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                           "churn": [{"event": "crash", "node": 1}]}"#;
        assert!(matches!(
            spec(no_round),
            Err(SpecError::Missing("churn[].round"))
        ));
        let bad_rate = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                           "faults": {"drop": 1.5}}"#;
        assert!(matches!(
            spec(bad_rate),
            Err(SpecError::Invalid {
                field: "faults.drop",
                ..
            })
        ));
        let bad_dup = r#"{"graph": {"family": "tree", "n": 8}, "protocol": "mis",
                          "faults": {"duplicate": [0.5, 99]}}"#;
        assert!(matches!(
            spec(bad_dup),
            Err(SpecError::Invalid {
                field: "faults.duplicate",
                ..
            })
        ));
    }

    #[test]
    fn resume_hex_round_trips_and_rejects() {
        assert_eq!(
            decode_hex(&encode_hex(&[0x00, 0xAB, 0xFF])).unwrap(),
            vec![0x00, 0xAB, 0xFF]
        );
        assert!(decode_hex("abc").is_none()); // odd length
        assert!(decode_hex("zz").is_none());
        let multi_seed = r#"{"graph": {"family": "tree", "n": 4}, "protocol": "mis",
                             "seeds": [1, 2], "resume_from": "aabb"}"#;
        assert!(matches!(
            spec(multi_seed),
            Err(SpecError::Invalid {
                field: "resume_from",
                ..
            })
        ));
        let bad_hex = r#"{"graph": {"family": "tree", "n": 4}, "protocol": "mis",
                          "resume_from": "xyz1"}"#;
        assert!(matches!(
            spec(bad_hex),
            Err(SpecError::Invalid {
                field: "resume_from",
                ..
            })
        ));
        let ok = r#"{"graph": {"family": "tree", "n": 4}, "protocol": "mis",
                     "resume_from": "aabbcc"}"#;
        assert_eq!(
            spec(ok).unwrap().resume_from.unwrap(),
            vec![0xAA, 0xBB, 0xCC]
        );
    }

    #[test]
    fn spec_error_converts_to_exec_config_error() {
        let e: ExecError = SpecError::Missing("graph").into();
        assert!(matches!(e, ExecError::Config { .. }));
    }
}
