//! Randomized linear bounded automata.
//!
//! A (randomized) LBA is a Turing machine whose working tape is restricted
//! to the cells carrying the input (`DSPACE(O(n))`); we use the standard
//! end-marker convention: the runner brackets the input with [`MARKER_LEFT`]
//! and [`MARKER_RIGHT`], which machines may read but never overwrite or
//! move past. Transitions may offer several choices, one of which is drawn
//! uniformly at random (the *randomized* LBA of the paper; a single choice
//! everywhere makes it deterministic).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A tape symbol, identified by its index into the machine's working
/// alphabet `Γ`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u16);

/// The reserved left end-marker `⊢` (alphabet index 0).
pub const MARKER_LEFT: Symbol = Symbol(0);
/// The reserved right end-marker `⊣` (alphabet index 1).
pub const MARKER_RIGHT: Symbol = Symbol(1);

/// Head movement. An LBA head moves every step (the paper's Lemma 6.2
/// encoding transmits the move direction with every head handoff).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
}

/// A single transition choice: write `write`, move `mv`, enter `state`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Action {
    /// Symbol written over the scanned cell.
    pub write: Symbol,
    /// Head movement.
    pub mv: Move,
    /// Next machine state.
    pub state: u16,
}

#[derive(Clone, Debug, Default)]
enum Cell {
    #[default]
    Unset,
    Choices(Vec<Action>),
    Accept,
    Reject,
}

/// Errors arising from running an ill-formed machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LbaError {
    /// `δ(state, symbol)` is undefined.
    MissingTransition {
        /// The machine state.
        state: u16,
        /// The scanned symbol.
        symbol: Symbol,
    },
    /// The machine tried to overwrite an end marker or write one elsewhere.
    MarkerViolation {
        /// The machine state at the violation.
        state: u16,
    },
    /// The head attempted to move past an end marker.
    OffTape {
        /// The machine state at the violation.
        state: u16,
    },
    /// The step budget was exhausted (possible loop).
    StepLimit(u64),
    /// An input symbol is a reserved marker or out of alphabet range.
    BadInput(Symbol),
}

impl std::fmt::Display for LbaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LbaError::MissingTransition { state, symbol } => {
                write!(f, "δ(p{state}, {symbol:?}) is undefined")
            }
            LbaError::MarkerViolation { state } => {
                write!(f, "marker overwritten in state p{state}")
            }
            LbaError::OffTape { state } => write!(f, "head left the tape in state p{state}"),
            LbaError::StepLimit(n) => write!(f, "no halt within {n} steps"),
            LbaError::BadInput(s) => write!(f, "invalid input symbol {s:?}"),
        }
    }
}

impl std::error::Error for LbaError {}

/// Result of a completed LBA run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOutcome {
    /// Whether the machine accepted.
    pub accepted: bool,
    /// Steps executed.
    pub steps: u64,
    /// Final tape contents (including markers).
    pub tape: Vec<Symbol>,
}

/// A (randomized) linear bounded automaton.
///
/// Build with [`LbaBuilder`]. States are `0..state_count` with state 0 the
/// initial state; accepting/rejecting states are declared explicitly and
/// halt the machine.
#[derive(Clone, Debug)]
pub struct Lba {
    name: String,
    alphabet: Vec<String>,
    state_names: Vec<String>,
    /// `table[state][symbol]`.
    table: Vec<Vec<Cell>>,
}

impl Lba {
    /// The machine's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of machine states `|P|`.
    pub fn state_count(&self) -> usize {
        self.state_names.len()
    }

    /// Number of working-alphabet symbols `|Γ|` (markers included).
    pub fn alphabet_len(&self) -> usize {
        self.alphabet.len()
    }

    /// Display name of a symbol.
    pub fn symbol_name(&self, s: Symbol) -> &str {
        &self.alphabet[s.0 as usize]
    }

    /// The symbol with the given display name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.alphabet
            .iter()
            .position(|n| n == name)
            .map(|i| Symbol(i as u16))
    }

    /// Whether `state` is accepting.
    pub fn is_accept(&self, state: u16) -> bool {
        self.table[state as usize]
            .iter()
            .all(|c| matches!(c, Cell::Accept))
    }

    /// Whether `state` is rejecting.
    pub fn is_reject(&self, state: u16) -> bool {
        self.table[state as usize]
            .iter()
            .all(|c| matches!(c, Cell::Reject))
    }

    /// Whether `state` halts (accepting or rejecting).
    pub fn is_halting(&self, state: u16) -> bool {
        self.is_accept(state) || self.is_reject(state)
    }

    /// The choice set `δ(state, symbol)`; `None` when the state halts.
    pub fn choices(&self, state: u16, symbol: Symbol) -> Result<Option<&[Action]>, LbaError> {
        match &self.table[state as usize][symbol.0 as usize] {
            Cell::Unset => Err(LbaError::MissingTransition { state, symbol }),
            Cell::Choices(c) => Ok(Some(c)),
            Cell::Accept | Cell::Reject => Ok(None),
        }
    }

    /// Whether the halting `state` accepts (panics on non-halting states).
    pub fn halt_accepts(&self, state: u16) -> bool {
        assert!(self.is_halting(state));
        self.is_accept(state)
    }

    /// Runs the machine directly on `input` (markers added automatically),
    /// drawing random choices from the given seed.
    pub fn run(&self, input: &[Symbol], seed: u64, max_steps: u64) -> Result<RunOutcome, LbaError> {
        for &s in input {
            if s == MARKER_LEFT || s == MARKER_RIGHT || s.0 as usize >= self.alphabet.len() {
                return Err(LbaError::BadInput(s));
            }
        }
        let mut tape: Vec<Symbol> = Vec::with_capacity(input.len() + 2);
        tape.push(MARKER_LEFT);
        tape.extend_from_slice(input);
        tape.push(MARKER_RIGHT);
        let mut head = 0usize;
        let mut state = 0u16;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut steps = 0u64;
        loop {
            if steps >= max_steps {
                return Err(LbaError::StepLimit(max_steps));
            }
            let scanned = tape[head];
            let choices = match self.choices(state, scanned)? {
                Some(c) => c,
                None => {
                    return Ok(RunOutcome {
                        accepted: self.is_accept(state),
                        steps,
                        tape,
                    });
                }
            };
            let action = if choices.len() == 1 {
                choices[0]
            } else {
                choices[rng.gen_range(0..choices.len())]
            };
            let is_marker = scanned == MARKER_LEFT || scanned == MARKER_RIGHT;
            if (is_marker && action.write != scanned)
                || (!is_marker && (action.write == MARKER_LEFT || action.write == MARKER_RIGHT))
            {
                return Err(LbaError::MarkerViolation { state });
            }
            tape[head] = action.write;
            match action.mv {
                Move::Left => {
                    if head == 0 {
                        return Err(LbaError::OffTape { state });
                    }
                    head -= 1;
                }
                Move::Right => {
                    if head + 1 >= tape.len() {
                        return Err(LbaError::OffTape { state });
                    }
                    head += 1;
                }
            }
            state = action.state;
            steps += 1;
        }
    }

    /// Decides `input` deterministically (seed 0); convenience for tests.
    pub fn accepts(&self, input: &[Symbol], max_steps: u64) -> Result<bool, LbaError> {
        Ok(self.run(input, 0, max_steps)?.accepted)
    }
}

/// Builder for [`Lba`] machines.
pub struct LbaBuilder {
    name: String,
    alphabet: Vec<String>,
    state_names: Vec<String>,
    table: Vec<Vec<Cell>>,
}

impl LbaBuilder {
    /// Starts a machine over the working alphabet `extra_symbols` (the
    /// markers `⊢`, `⊣` are added automatically as indices 0 and 1).
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(
        name: impl Into<String>,
        extra_symbols: I,
    ) -> Self {
        let mut alphabet = vec!["⊢".to_owned(), "⊣".to_owned()];
        alphabet.extend(extra_symbols.into_iter().map(Into::into));
        LbaBuilder {
            name: name.into(),
            alphabet,
            state_names: Vec::new(),
            table: Vec::new(),
        }
    }

    /// Adds a working state; the first added state is the initial state.
    pub fn state(&mut self, name: impl Into<String>) -> u16 {
        let id = self.state_names.len() as u16;
        self.state_names.push(name.into());
        self.table.push(vec![Cell::Unset; self.alphabet.len()]);
        id
    }

    /// Adds an accepting halt state.
    pub fn accept_state(&mut self, name: impl Into<String>) -> u16 {
        let id = self.state(name);
        self.table[id as usize] = vec![Cell::Accept; self.alphabet.len()];
        id
    }

    /// Adds a rejecting halt state.
    pub fn reject_state(&mut self, name: impl Into<String>) -> u16 {
        let id = self.state(name);
        self.table[id as usize] = vec![Cell::Reject; self.alphabet.len()];
        id
    }

    /// Sets the deterministic transition `δ(state, read) = (write, mv, next)`.
    pub fn on(&mut self, state: u16, read: Symbol, write: Symbol, mv: Move, next: u16) {
        self.table[state as usize][read.0 as usize] = Cell::Choices(vec![Action {
            write,
            mv,
            state: next,
        }]);
    }

    /// Sets a randomized transition: a uniform choice among `actions`.
    pub fn on_random(&mut self, state: u16, read: Symbol, actions: Vec<Action>) {
        assert!(!actions.is_empty());
        self.table[state as usize][read.0 as usize] = Cell::Choices(actions);
    }

    /// Finalizes the machine. Unset cells remain as runtime errors — a
    /// machine is allowed to leave genuinely unreachable cells undefined.
    pub fn build(self) -> Lba {
        assert!(
            !self.state_names.is_empty(),
            "a machine needs at least one state"
        );
        Lba {
            name: self.name,
            alphabet: self.alphabet,
            state_names: self.state_names,
            table: self.table,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Machine that scans right and accepts at the right marker.
    fn scanner() -> Lba {
        let mut b = LbaBuilder::new("scan", ["a"]);
        let a = Symbol(2);
        let scan = b.state("scan");
        let acc = b.accept_state("acc");
        b.on(scan, MARKER_LEFT, MARKER_LEFT, Move::Right, scan);
        b.on(scan, a, a, Move::Right, scan);
        b.on(scan, MARKER_RIGHT, MARKER_RIGHT, Move::Left, acc);
        b.build()
    }

    #[test]
    fn scanner_accepts_and_counts_steps() {
        let m = scanner();
        let out = m.run(&[Symbol(2); 5], 0, 1000).unwrap();
        assert!(out.accepted);
        // ⊢ + 5 cells + ⊣-turnaround = 7 steps.
        assert_eq!(out.steps, 7);
        assert_eq!(out.tape.len(), 7);
    }

    #[test]
    fn empty_input_works() {
        let m = scanner();
        assert!(m.accepts(&[], 100).unwrap());
    }

    #[test]
    fn missing_transition_is_reported() {
        let mut b = LbaBuilder::new("partial", ["a"]);
        let s = b.state("s");
        b.on(s, MARKER_LEFT, MARKER_LEFT, Move::Right, s);
        let m = b.build();
        let err = m.run(&[Symbol(2)], 0, 100).unwrap_err();
        assert_eq!(
            err,
            LbaError::MissingTransition {
                state: 0,
                symbol: Symbol(2)
            }
        );
    }

    #[test]
    fn marker_overwrite_is_reported() {
        let mut b = LbaBuilder::new("vandal", ["a"]);
        let a = Symbol(2);
        let s = b.state("s");
        b.on(s, MARKER_LEFT, a, Move::Right, s);
        let m = b.build();
        assert_eq!(
            m.run(&[a], 0, 100).unwrap_err(),
            LbaError::MarkerViolation { state: 0 }
        );
    }

    #[test]
    fn off_tape_is_reported() {
        let mut b = LbaBuilder::new("runaway", ["a"]);
        let s = b.state("s");
        b.on(s, MARKER_LEFT, MARKER_LEFT, Move::Left, s);
        let m = b.build();
        assert_eq!(
            m.run(&[], 0, 100).unwrap_err(),
            LbaError::OffTape { state: 0 }
        );
    }

    #[test]
    fn step_limit_is_reported() {
        let mut b = LbaBuilder::new("loop", ["a"]);
        let a = Symbol(2);
        let s = b.state("s");
        let t = b.state("t");
        b.on(s, MARKER_LEFT, MARKER_LEFT, Move::Right, t);
        b.on(t, a, a, Move::Left, s);
        b.on(s, a, a, Move::Right, t);
        b.on(t, MARKER_LEFT, MARKER_LEFT, Move::Right, s);
        let m = b.build();
        assert_eq!(m.run(&[a], 0, 50).unwrap_err(), LbaError::StepLimit(50));
    }

    #[test]
    fn reserved_input_symbols_rejected() {
        let m = scanner();
        assert_eq!(
            m.run(&[MARKER_LEFT], 0, 10).unwrap_err(),
            LbaError::BadInput(MARKER_LEFT)
        );
        assert_eq!(
            m.run(&[Symbol(99)], 0, 10).unwrap_err(),
            LbaError::BadInput(Symbol(99))
        );
    }

    #[test]
    fn randomized_machine_samples_choices() {
        // From the start state, randomly accept or reject: both outcomes
        // must occur across seeds.
        let mut b = LbaBuilder::new("coin", ["a"]);
        let s = b.state("s");
        let acc = b.accept_state("acc");
        let rej = b.reject_state("rej");
        b.on_random(
            s,
            MARKER_LEFT,
            vec![
                Action {
                    write: MARKER_LEFT,
                    mv: Move::Right,
                    state: acc,
                },
                Action {
                    write: MARKER_LEFT,
                    mv: Move::Right,
                    state: rej,
                },
            ],
        );
        let m = b.build();
        let outcomes: std::collections::HashSet<bool> = (0..40)
            .map(|seed| m.run(&[], seed, 100).unwrap().accepted)
            .collect();
        assert_eq!(outcomes.len(), 2);
    }

    #[test]
    fn halting_state_classification() {
        let m = scanner();
        assert!(m.is_accept(1));
        assert!(!m.is_reject(1));
        assert!(m.is_halting(1));
        assert!(!m.is_halting(0));
    }
}
