//! **Lemma 6.2**: an rLBA can be simulated by an nFSM protocol on a path.
//!
//! One path node per tape cell (end markers included, so the path has
//! `n + 2` nodes — conveniently, the marker cells are exactly the
//! degree-1 endpoints, realizing the paper's remark that endpoint
//! detection is "without loss of generality"). The machine head travels
//! as **handoff messages** between adjacent nodes: when the head departs
//! a cell, the cell broadcasts `(direction, machine state)`, and the
//! correct neighbor adopts the head.
//!
//! ## Making the paper's sketch watertight
//!
//! The paper's construction stores in each node whether the head is to its
//! left or right and lets a node adopt the head when a message "indicates
//! that the head should move" toward it. Ports, however, retain *stale*
//! letters: after `v` hands the head left to `u`, the old `(R, p)` that
//! `u` sent earlier still sits in `v`'s port, and if `u`'s next departure
//! re-sends the very same letter, `v` cannot observe any change — it would
//! either adopt a stale head (wrong state) or deadlock. We close this gap
//! with a **per-edge handoff parity bit** (two bits of extra state per
//! side, still constant): successive handoffs across the same directed
//! edge alternate parity, so a stale letter never matches the expected
//! parity and a fresh one always does.
//!
//! Cross-edge aliasing (a letter from the *other* neighbor matching the
//! expected one) cannot occur: a node with the head on its left can only
//! hold `(L, ·)` letters in its right port — for the head to be on the
//! left, it must have exited the right neighbor leftward, overwriting that
//! port — and expected letters from the left are `(R, ·)`.
//!
//! Upon reaching a halting machine state, the adopting node floods
//! `HALT-accept`/`HALT-reject` along the path; every node outputs the
//! machine's verdict.

use stoneage_core::{Alphabet, Letter, MultiFsm, ObsVec, Transitions};
use stoneage_graph::{generators, Graph};
use stoneage_sim::{ExecError, Simulation};

use crate::machine::{Lba, LbaError, Move, RunOutcome, Symbol};

/// Which side of a node the head is currently on.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Side {
    /// The head is at or beyond the left neighbor.
    Left,
    /// The head is at or beyond the right neighbor.
    Right,
}

impl Side {
    fn index(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    fn of(mv: Move) -> Side {
        match mv {
            Move::Left => Side::Left,
            Move::Right => Side::Right,
        }
    }
}

/// A state of the compiled path protocol.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PathState {
    /// The node currently holding the head, before its first/next
    /// application of the machine's transition (only used for the initial
    /// configuration — subsequent applications happen inside the adopting
    /// transition).
    InitialHead {
        /// The cell's tape symbol.
        sym: Symbol,
    },
    /// An inert tape cell.
    Cell {
        /// The cell's current tape symbol.
        sym: Symbol,
        /// Which side the head is on.
        side: Side,
        /// Parity of the last handoff *sent* to [left, right].
        sent: [bool; 2],
        /// Parity of the last handoff *accepted* from [left, right].
        acc: [bool; 2],
    },
    /// Verdict reached and flooded.
    Done {
        /// The machine's verdict.
        accept: bool,
    },
}

/// The Lemma 6.2 compiler: wraps an [`Lba`] as a [`MultiFsm`] to run on a
/// path graph (`b = 1`).
#[derive(Clone, Debug)]
pub struct LbaOnPath {
    machine: Lba,
    alphabet: Alphabet,
}

const L_INIT: Letter = Letter(0);
const L_HALT_ACC: Letter = Letter(1);
const L_HALT_REJ: Letter = Letter(2);

impl LbaOnPath {
    /// Compiles `machine` into a path protocol.
    pub fn new(machine: Lba) -> Self {
        let mut names = vec![
            "INIT".to_owned(),
            "HALT_ACC".to_owned(),
            "HALT_REJ".to_owned(),
        ];
        for p in 0..machine.state_count() {
            for dir in ["L", "R"] {
                for parity in 0..2 {
                    names.push(format!("({dir},p{p},{parity})"));
                }
            }
        }
        LbaOnPath {
            alphabet: Alphabet::new(names),
            machine,
        }
    }

    /// The wrapped machine.
    pub fn machine(&self) -> &Lba {
        &self.machine
    }

    /// The handoff letter `(direction, machine state, parity)`.
    pub fn handoff(&self, mv: Move, state: u16, parity: bool) -> Letter {
        let dir = match mv {
            Move::Left => 0u16,
            Move::Right => 1,
        };
        Letter(3 + (state * 2 + dir) * 2 + parity as u16)
    }

    /// Encodes a node input: the cell symbol plus the head flag.
    pub fn encode_input(sym: Symbol, has_head: bool) -> usize {
        (sym.0 as usize) * 2 + has_head as usize
    }

    /// Applies the machine transition for a head adopted in machine state
    /// `p` at a cell holding `sym` with handoff bookkeeping `(side→sent)`.
    fn apply_head(
        &self,
        p: u16,
        sym: Symbol,
        sent: [bool; 2],
        acc: [bool; 2],
    ) -> Transitions<PathState> {
        if self.machine.is_halting(p) {
            let accept = self.machine.halt_accepts(p);
            let letter = if accept { L_HALT_ACC } else { L_HALT_REJ };
            return Transitions::det(PathState::Done { accept }, Some(letter));
        }
        let choices = self
            .machine
            .choices(p, sym)
            .unwrap_or_else(|e| panic!("machine is not total on reachable configs: {e}"))
            .expect("non-halting state has choices");
        Transitions::uniform(
            choices
                .iter()
                .map(|a| {
                    let side = Side::of(a.mv);
                    let mut sent = sent;
                    sent[side.index()] = !sent[side.index()];
                    let letter = self.handoff(a.mv, a.state, sent[side.index()]);
                    (
                        PathState::Cell {
                            sym: a.write,
                            side,
                            sent,
                            acc,
                        },
                        Some(letter),
                    )
                })
                .collect(),
        )
    }
}

impl stoneage_core::Protocol for LbaOnPath {
    type State = PathState;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        1
    }

    fn initial_letter(&self) -> Letter {
        L_INIT
    }

    fn initial_state(&self, input: usize) -> PathState {
        let sym = Symbol((input / 2) as u16);
        if input % 2 == 1 {
            PathState::InitialHead { sym }
        } else {
            // The head starts at the leftmost cell, so everyone else sees
            // it on their left.
            PathState::Cell {
                sym,
                side: Side::Left,
                sent: [false; 2],
                acc: [false; 2],
            }
        }
    }

    fn output(&self, q: &PathState) -> Option<u64> {
        match q {
            PathState::Done { accept } => Some(*accept as u64),
            _ => None,
        }
    }
}

impl MultiFsm for LbaOnPath {
    fn delta(&self, q: &PathState, obs: &ObsVec) -> Transitions<PathState> {
        // Halt flooding dominates everything.
        let flood = if !obs.get(L_HALT_ACC).is_zero() {
            Some(true)
        } else if !obs.get(L_HALT_REJ).is_zero() {
            Some(false)
        } else {
            None
        };
        match q {
            PathState::Done { accept } => {
                Transitions::det(PathState::Done { accept: *accept }, None)
            }
            PathState::InitialHead { sym } => {
                // Machine state 0 starts here; apply the first transition
                // unconditionally.
                self.apply_head(0, *sym, [false; 2], [false; 2])
            }
            PathState::Cell {
                sym,
                side,
                sent,
                acc,
            } => {
                if let Some(accept) = flood {
                    let letter = if accept { L_HALT_ACC } else { L_HALT_REJ };
                    return Transitions::det(PathState::Done { accept }, Some(letter));
                }
                // Expect a handoff from the side the head is on, moving
                // toward us, with fresh parity.
                let (mv, from) = match side {
                    Side::Left => (Move::Right, Side::Left),
                    Side::Right => (Move::Left, Side::Right),
                };
                let expected_parity = !acc[from.index()];
                for p in 0..self.machine.state_count() as u16 {
                    let letter = self.handoff(mv, p, expected_parity);
                    if !obs.get(letter).is_zero() {
                        let mut acc = *acc;
                        acc[from.index()] = expected_parity;
                        return self.apply_head(p, *sym, *sent, acc);
                    }
                }
                Transitions::det(q.clone(), None)
            }
        }
    }
}

/// Runs `machine` on `input` via the compiled path protocol under the
/// synchronous engine; returns the verdict and the rounds used.
pub fn run_on_path(
    machine: &Lba,
    input: &[Symbol],
    seed: u64,
    max_rounds: u64,
) -> Result<(bool, u64), ExecError> {
    let protocol = LbaOnPath::new(machine.clone());
    let (graph, inputs) = path_instance(input);
    let out = Simulation::sync(&protocol, &graph)
        .seed(seed)
        .budget(max_rounds)
        .inputs(&inputs)
        .run()?
        .into_sync_outcome()
        .expect("sync backend");
    // All nodes flood to the same verdict.
    debug_assert!(out.outputs.windows(2).all(|w| w[0] == w[1]));
    Ok((out.outputs[0] == 1, out.rounds))
}

/// The path graph and input vector encoding `⊢ input ⊣` with the head on
/// the left marker.
pub fn path_instance(input: &[Symbol]) -> (Graph, Vec<usize>) {
    let n = input.len() + 2;
    let graph = generators::path(n);
    let mut inputs = Vec::with_capacity(n);
    inputs.push(LbaOnPath::encode_input(crate::MARKER_LEFT, true));
    inputs.extend(input.iter().map(|&s| LbaOnPath::encode_input(s, false)));
    inputs.push(LbaOnPath::encode_input(crate::MARKER_RIGHT, false));
    (graph, inputs)
}

/// Cross-checks the compiled path protocol against the direct runner on
/// the same input; returns the common verdict.
///
/// # Panics
/// Panics if the two disagree (they must not, for any seeds, when the
/// machine's verdict is language-determined).
pub fn cross_check(
    machine: &Lba,
    input: &[Symbol],
    direct_seed: u64,
    path_seed: u64,
) -> Result<bool, LbaError> {
    let direct: RunOutcome = machine.run(input, direct_seed, 10_000_000)?;
    let (path_verdict, _) =
        run_on_path(machine, input, path_seed, 10_000_000).expect("path simulation timed out");
    assert_eq!(
        direct.accepted, path_verdict,
        "Lemma 6.2 simulation diverged from the direct runner"
    );
    Ok(direct.accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machines::{self, encode_abc};
    use stoneage_core::Protocol as _;

    #[test]
    fn handoff_letters_are_distinct() {
        let p = LbaOnPath::new(machines::length_mod3());
        let mut seen = std::collections::HashSet::new();
        for state in 0..p.machine().state_count() as u16 {
            for mv in [Move::Left, Move::Right] {
                for parity in [false, true] {
                    assert!(seen.insert(p.handoff(mv, state, parity)));
                }
            }
        }
        assert!(!seen.contains(&L_INIT));
        assert!(!seen.contains(&L_HALT_ACC));
        assert!(!seen.contains(&L_HALT_REJ));
    }

    #[test]
    fn alphabet_size_is_constant_in_input_length() {
        let p = LbaOnPath::new(machines::abc_equal());
        assert_eq!(p.alphabet().len(), 3 + 4 * p.machine().state_count());
    }

    #[test]
    fn dfa_machine_agrees_on_path() {
        let m = machines::length_mod3();
        for n in 0..10 {
            let w = "a".repeat(n);
            let verdict = cross_check(&m, &encode_abc(&w), 0, 0).unwrap();
            assert_eq!(verdict, n % 3 == 0, "n = {n}");
        }
    }

    #[test]
    fn abc_machine_agrees_on_path() {
        let m = machines::abc_equal();
        for word in ["", "abc", "aabbcc", "ab", "acb", "abcc", "ba", "aaabbbccc"] {
            cross_check(&m, &encode_abc(word), 0, 1).unwrap();
        }
    }

    #[test]
    fn palindrome_machine_agrees_on_path() {
        let m = machines::palindrome();
        for word in ["", "a", "ab", "aba", "abba", "abab", "baab", "bb"] {
            cross_check(&m, &encode_abc(word), 0, 2).unwrap();
        }
    }

    #[test]
    fn majority_machine_agrees_on_path() {
        let m = machines::majority();
        for word in ["", "a", "b", "ab", "aab", "abb", "aabab", "bbbaa"] {
            cross_check(&m, &encode_abc(word), 0, 3).unwrap();
        }
    }

    #[test]
    fn randomized_machine_agrees_for_many_seeds() {
        let m = machines::random_walk_contains_b();
        for seed in 0..10 {
            for (word, expect) in [("aab", true), ("aaa", false), ("b", true)] {
                let (verdict, _) = run_on_path(&m, &encode_abc(word), seed, 10_000_000).unwrap();
                assert_eq!(verdict, expect, "{word:?} seed {seed}");
            }
        }
    }

    #[test]
    fn path_rounds_track_machine_steps() {
        // Each machine step is one head handoff = one synchronous round
        // (plus flooding at the end): rounds should be Θ(steps).
        let m = machines::length_mod3();
        let input = encode_abc(&"a".repeat(9));
        let direct = m.run(&input, 0, 100_000).unwrap();
        let (_, rounds) = run_on_path(&m, &input, 0, 100_000).unwrap();
        assert!(rounds as f64 >= direct.steps as f64);
        assert!(
            (rounds as f64) < 4.0 * direct.steps as f64 + 40.0,
            "rounds {rounds} vs steps {}",
            direct.steps
        );
    }

    #[test]
    fn initial_states_decode_inputs() {
        let p = LbaOnPath::new(machines::length_mod3());
        let s = p.initial_state(LbaOnPath::encode_input(Symbol(2), false));
        assert_eq!(
            s,
            PathState::Cell {
                sym: Symbol(2),
                side: Side::Left,
                sent: [false; 2],
                acc: [false; 2],
            }
        );
        let s = p.initial_state(LbaOnPath::encode_input(Symbol(0), true));
        assert_eq!(s, PathState::InitialHead { sym: Symbol(0) });
    }
}
