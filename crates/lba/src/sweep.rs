#![allow(clippy::needless_range_loop)]

//! **Lemma 6.1**: an nFSM protocol on a graph of arbitrary topology can be
//! simulated by an rLBA.
//!
//! The proof stores the graph as an adjacency list on the tape, augmented
//! with O(1) extra cells per node (current state, next transmitted letter)
//! and O(1) per edge (the port content), and simulates each round by two
//! sweeps: the first computes every node's transition from its current
//! ports *without* delivering anything; the second delivers the computed
//! letters into the ports.
//!
//! This module implements that simulation against a [`Tape`] that only
//! permits reading/writing the cell under the head and moving it one cell
//! at a time — the LBA's *resource* semantics (linear space, local
//! access). The finite control is Rust code standing in for the proof's
//! "hard-wired" FSM; in particular node-id comparisons that a literal LBA
//! would perform by zig-zag marking are done in control registers (a
//! polynomial-time, zero-space difference, documented in DESIGN.md). The
//! space accounting — exactly `3n + 4m` tape cells — is asserted, and
//! head movement is counted so the experiments can report the simulation's
//! (polynomial) cost.
//!
//! Running this simulator with the same per-node seeds as the native
//! synchronous engine reproduces its execution **bit for bit**, which is
//! the equivalence experiment E9.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use stoneage_core::{BoundedCount, MultiFsm, ObsVec};
use stoneage_graph::{Graph, NodeId};

/// A bounded tape allowing only head-local access.
///
/// All mutation goes through [`Tape::read`], [`Tape::write`],
/// [`Tape::move_left`] and [`Tape::move_right`]; the cell count is fixed
/// at construction (the linear bound).
#[derive(Clone, Debug)]
pub struct Tape {
    cells: Vec<u64>,
    head: usize,
    moves: u64,
}

impl Tape {
    /// A zeroed tape with `len` cells and the head at cell 0.
    pub fn new(len: usize) -> Self {
        Tape {
            cells: vec![0; len],
            head: 0,
            moves: 0,
        }
    }

    /// Number of cells (fixed for the tape's lifetime).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the tape has zero cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell under the head.
    pub fn read(&self) -> u64 {
        self.cells[self.head]
    }

    /// Overwrites the cell under the head.
    pub fn write(&mut self, value: u64) {
        self.cells[self.head] = value;
    }

    /// Moves the head one cell left (clamped at 0 — a real LBA bounces on
    /// its marker).
    pub fn move_left(&mut self) {
        if self.head > 0 {
            self.head -= 1;
            self.moves += 1;
        }
    }

    /// Moves the head one cell right (clamped at the end).
    pub fn move_right(&mut self) {
        if self.head + 1 < self.cells.len() {
            self.head += 1;
            self.moves += 1;
        }
    }

    /// Total head movements so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Walks the head to an absolute cell (sequence of unit moves).
    fn seek(&mut self, target: usize) {
        while self.head < target {
            self.move_right();
        }
        while self.head > target {
            self.move_left();
        }
    }
}

/// Outcome of a completed sweep simulation.
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-node outputs.
    pub outputs: Vec<u64>,
    /// Rounds simulated.
    pub rounds: u64,
    /// Tape cells used (the linear bound: `3n + 4m`).
    pub tape_cells: usize,
    /// Total head movements (the simulation's time cost).
    pub head_moves: u64,
}

/// Simulates `protocol` on `graph` for up to `max_rounds` rounds on an
/// adjacency-list tape, using the same per-node randomness as
/// the `stoneage_sim` sync backend with the same `seed` — outputs are
/// identical.
///
/// `encode`/`decode` translate protocol states to tape words (the sweep
/// simulator's analogue of the proof's "hard-wired" state table).
pub fn simulate_on_tape<P, E, D>(
    protocol: &P,
    graph: &Graph,
    inputs: &[usize],
    seed: u64,
    max_rounds: u64,
    encode: E,
    decode: D,
) -> Result<SweepOutcome, String>
where
    P: MultiFsm,
    E: Fn(&P::State) -> u64,
    D: Fn(u64) -> P::State,
{
    let n = graph.node_count();
    if inputs.len() != n {
        return Err(format!("{} inputs for {n} nodes", inputs.len()));
    }
    let sigma = protocol.alphabet().len();
    let b = protocol.bound();
    let sigma0 = protocol.initial_letter().index() as u64;

    // Tape layout per node v (records concatenated in id order):
    //   [ state, pending_letter (0 = ε, k+1 = letter k), degree,
    //     (neighbor_id, port_letter) * degree ]
    // Offsets are control-side bookkeeping derived from the input graph.
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    for v in 0..n {
        offsets.push(acc);
        acc += 3 + 2 * graph.degree(v as NodeId);
    }
    offsets.push(acc);
    let mut tape = Tape::new(acc);

    // Initialize the tape: states from inputs, ports to σ₀.
    for v in 0..n {
        tape.seek(offsets[v]);
        let state = protocol.initial_state(inputs[v]);
        tape.write(encode(&state));
        tape.move_right();
        tape.write(0);
        tape.move_right();
        let deg = graph.degree(v as NodeId);
        tape.write(deg as u64);
        for &u in graph.neighbors(v as NodeId) {
            tape.move_right();
            tape.write(u as u64);
            tape.move_right();
            tape.write(sigma0);
        }
    }

    // Identical RNG streams to the stoneage_sim sync backend.
    let mut rngs: Vec<SmallRng> = (0..n as u64)
        .map(|v| SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(v))))
        .collect();

    let all_output = |tape: &mut Tape| -> Option<Vec<u64>> {
        let mut outputs = Vec::with_capacity(n);
        for v in 0..n {
            tape.seek(offsets[v]);
            let state = decode(tape.read());
            outputs.push(protocol.output(&state)?);
        }
        Some(outputs)
    };

    if let Some(outputs) = all_output(&mut tape) {
        return Ok(SweepOutcome {
            outputs,
            rounds: 0,
            tape_cells: tape.len(),
            head_moves: tape.moves(),
        });
    }

    let mut counts = vec![0usize; sigma];
    for round in 1..=max_rounds {
        // Sweep 1: compute every node's transition from its (old) ports.
        for v in 0..n {
            tape.seek(offsets[v]);
            let state = decode(tape.read());
            // Count the letters over v's ports (bounded counters).
            counts.iter_mut().for_each(|c| *c = 0);
            let deg = graph.degree(v as NodeId);
            for k in 0..deg {
                tape.seek(offsets[v] + 3 + 2 * k + 1);
                counts[tape.read() as usize] += 1;
            }
            let obs = ObsVec::new(
                counts
                    .iter()
                    .map(|&c| BoundedCount::from_count(c, b))
                    .collect(),
            );
            let transitions = protocol.delta(&state, &obs);
            let (next, emission) = transitions.sample(&mut rngs[v]);
            let next_code = encode(next);
            let pending = emission.map_or(0, |l| l.index() as u64 + 1);
            tape.seek(offsets[v]);
            tape.write(next_code);
            tape.move_right();
            tape.write(pending);
        }
        // Sweep 2: deliver the pending letters into the ports.
        for v in 0..n {
            tape.seek(offsets[v] + 1);
            let pending = tape.read();
            if pending == 0 {
                continue;
            }
            let letter = pending - 1;
            // Replace the content of ψ_u(v) for every neighbor u.
            for &u in graph.neighbors(v as NodeId) {
                let u = u as usize;
                let deg_u = graph.degree(u as NodeId);
                for k in 0..deg_u {
                    tape.seek(offsets[u] + 3 + 2 * k);
                    if tape.read() == v as u64 {
                        tape.move_right();
                        tape.write(letter);
                        break;
                    }
                }
            }
            tape.seek(offsets[v] + 1);
            tape.write(0);
        }
        if let Some(outputs) = all_output(&mut tape) {
            return Ok(SweepOutcome {
                outputs,
                rounds: round,
                tape_cells: tape.len(),
                head_moves: tape.moves(),
            });
        }
    }
    Err(format!(
        "no output configuration within {max_rounds} rounds"
    ))
}

/// SplitMix64, kept bit-identical to `stoneage_sim`'s seeding.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::generators;
    use stoneage_protocols::{MisProtocol, MisState};
    use stoneage_sim::Simulation;

    fn mis_encode(s: &MisState) -> u64 {
        *s as u64
    }

    fn mis_decode(code: u64) -> MisState {
        MisState::ALL[code as usize]
    }

    #[test]
    fn tape_is_head_local() {
        let mut t = Tape::new(5);
        t.write(7);
        t.move_right();
        t.write(9);
        assert_eq!(t.read(), 9);
        t.move_left();
        assert_eq!(t.read(), 7);
        t.move_left(); // clamped
        assert_eq!(t.read(), 7);
        assert_eq!(t.moves(), 2);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn sweep_simulation_matches_native_engine_exactly() {
        // Lemma 6.1, bit-for-bit: same seeds ⇒ same outputs and rounds.
        for (gname, g) in [
            ("gnp", generators::gnp(24, 0.15, 3)),
            ("cycle", generators::cycle(15)),
            ("tree", generators::random_tree(20, 7)),
            ("complete", generators::complete(8)),
        ] {
            for seed in 0..5 {
                let native = Simulation::sync(&MisProtocol::new(), &g)
                    .seed(seed)
                    .run()
                    .unwrap();
                let sweep = simulate_on_tape(
                    &MisProtocol::new(),
                    &g,
                    &vec![0; g.node_count()],
                    seed,
                    1_000_000,
                    mis_encode,
                    mis_decode,
                )
                .unwrap();
                assert_eq!(sweep.outputs, native.outputs, "{gname} seed {seed}");
                assert_eq!(Some(sweep.rounds), native.rounds(), "{gname} seed {seed}");
            }
        }
    }

    #[test]
    fn tape_space_is_linear_in_nodes_plus_edges() {
        let g = generators::gnp(40, 0.1, 1);
        let sweep = simulate_on_tape(
            &MisProtocol::new(),
            &g,
            &vec![0; 40],
            0,
            1_000_000,
            mis_encode,
            mis_decode,
        )
        .unwrap();
        // 3 cells per node + 2 per directed edge = O(1) per node/edge.
        assert_eq!(sweep.tape_cells, 3 * 40 + 4 * g.edge_count());
        assert!(sweep.head_moves > 0);
    }

    #[test]
    fn sweep_simulation_handles_inputs() {
        // Wave protocol (per-node inputs) through the sweep simulator.
        use stoneage_core::AsMulti;
        use stoneage_protocols::wave::{wave_inputs, wave_protocol};
        let g = generators::path(12);
        let inputs = wave_inputs(12, &[0]);
        let p = AsMulti(wave_protocol());
        let native = Simulation::sync(&p, &g)
            .seed(4)
            .inputs(&inputs)
            .run()
            .unwrap();
        let sweep =
            simulate_on_tape(&p, &g, &inputs, 4, 100_000, |s| *s as u64, |c| c as u16).unwrap();
        assert_eq!(sweep.outputs, native.outputs);
        assert_eq!(Some(sweep.rounds), native.rounds());
    }

    #[test]
    fn mismatched_inputs_error() {
        let g = generators::path(3);
        let err = simulate_on_tape(&MisProtocol::new(), &g, &[0], 0, 10, mis_encode, mis_decode)
            .unwrap_err();
        assert!(err.contains("inputs"));
    }
}
