//! The computational-power results of Section 6 of *Stone Age Distributed
//! Computing*: nFSM protocols are, in power, exactly **randomized linear
//! bounded automata** (rLBAs).
//!
//! * [`machine`] — the rLBA substrate: end-marked tapes, deterministic and
//!   randomized transition tables, a direct runner.
//! * [`machines`] — a library of example machines: the canonical
//!   context-sensitive language `aⁿbⁿcⁿ`, palindromes, majority, a regular
//!   single-sweep divisibility check, and a randomized machine.
//! * [`to_nfsm`] — **Lemma 6.2**: compiling any rLBA into an nFSM protocol
//!   on a path, one node per tape cell; the head travels as handoff
//!   messages between adjacent nodes.
//! * [`sweep`] — **Lemma 6.1**: simulating any nFSM protocol on any graph
//!   by a machine that works on an adjacency-list *tape* with strictly
//!   local head movement and O(1) auxiliary state per node/edge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod machines;
pub mod sweep;
pub mod to_nfsm;

pub use machine::{Lba, LbaBuilder, LbaError, Move, RunOutcome, Symbol, MARKER_LEFT, MARKER_RIGHT};
pub use to_nfsm::LbaOnPath;
