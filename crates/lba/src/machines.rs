//! A library of example LBAs used by the Section 6 experiments.
//!
//! `aⁿbⁿcⁿ` is the canonical **context-sensitive** language (recognizable
//! by an LBA but by no pushdown automaton), making it the natural witness
//! for the computational-power claim; palindromes and majority exercise
//! zig-zag head movement; the divisibility machine is a single-sweep
//! regular-language baseline; and the randomized scanner exercises the
//! rLBA choice machinery end to end.

use crate::machine::{Action, Lba, LbaBuilder, Move, Symbol, MARKER_LEFT, MARKER_RIGHT};

/// Symbols of the `{a, b, c}` machines: `a = 2`, `b = 3`, `c = 4`,
/// crossed-off `X = 5`.
pub mod sym {
    use crate::machine::Symbol;

    /// Input letter `a`.
    pub const A: Symbol = Symbol(2);
    /// Input letter `b`.
    pub const B: Symbol = Symbol(3);
    /// Input letter `c`.
    pub const C: Symbol = Symbol(4);
    /// Crossed-off cell.
    pub const X: Symbol = Symbol(5);
}

/// Encodes an ASCII string over `{a, b, c}` into machine symbols.
///
/// # Panics
/// Panics on characters outside `{a, b, c}`.
pub fn encode_abc(text: &str) -> Vec<Symbol> {
    text.chars()
        .map(|ch| match ch {
            'a' => sym::A,
            'b' => sym::B,
            'c' => sym::C,
            other => panic!("unsupported character {other:?}"),
        })
        .collect()
}

/// The language `{aⁿbⁿcⁿ : n ≥ 0}` — context-sensitive, not context-free.
///
/// Strategy: repeatedly sweep right crossing off the first live `a`, the
/// first live `b` and the first live `c` (rejecting on bad letter order),
/// then return to the left marker; accept when a sweep finds no live
/// letters at all.
pub fn abc_equal() -> Lba {
    use sym::{A, B, C, X};
    let mut m = LbaBuilder::new("a^n b^n c^n", ["a", "b", "c", "X"]);
    let start = m.state("start"); // at ⊢, launch a sweep
    let seek_a = m.state("seek_a");
    let seek_b = m.state("seek_b");
    let seek_c = m.state("seek_c");
    let check_tail = m.state("check_tail"); // after crossing c: rest must be X
    let rewind = m.state("rewind");
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");

    m.on(start, MARKER_LEFT, MARKER_LEFT, Move::Right, seek_a);

    // seek_a: skip X; first live letter must be `a` (cross it off); hitting
    // ⊣ or a `b`/`c` with *nothing* live at all... a `b`/`c` here means
    // the `a`s ran out before the `b`s/`c`s — reject. ⊣ means everything
    // is crossed off — accept.
    m.on(seek_a, X, X, Move::Right, seek_a);
    m.on(seek_a, A, X, Move::Right, seek_b);
    m.on(seek_a, B, B, Move::Left, rej);
    m.on(seek_a, C, C, Move::Left, rej);
    m.on(seek_a, MARKER_RIGHT, MARKER_RIGHT, Move::Left, acc);

    // seek_b: skip X and remaining a's; cross off the first b.
    m.on(seek_b, X, X, Move::Right, seek_b);
    m.on(seek_b, A, A, Move::Right, seek_b);
    m.on(seek_b, B, X, Move::Right, seek_c);
    m.on(seek_b, C, C, Move::Left, rej);
    m.on(seek_b, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);

    // seek_c: skip X and remaining b's; cross off the first c. A live `a`
    // here would mean letters out of order.
    m.on(seek_c, X, X, Move::Right, seek_c);
    m.on(seek_c, B, B, Move::Right, seek_c);
    m.on(seek_c, A, A, Move::Left, rej);
    m.on(seek_c, C, X, Move::Right, check_tail);
    m.on(seek_c, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);

    // check_tail: everything after the crossed c must be c or X until ⊣
    // (an `a` or `b` after the c-block is out of order).
    m.on(check_tail, C, C, Move::Right, check_tail);
    m.on(check_tail, X, X, Move::Right, check_tail);
    m.on(check_tail, A, A, Move::Left, rej);
    m.on(check_tail, B, B, Move::Left, rej);
    m.on(check_tail, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rewind);

    // rewind to ⊢ and start the next sweep.
    for s in [A, B, C, X] {
        m.on(rewind, s, s, Move::Left, rewind);
    }
    m.on(rewind, MARKER_LEFT, MARKER_LEFT, Move::Right, seek_a);

    m.build()
}

/// Palindromes over `{a, b}`: zig-zag comparing and crossing off the two
/// ends until the live region is empty or a single cell.
pub fn palindrome() -> Lba {
    use sym::{A, B, X};
    let mut m = LbaBuilder::new("palindrome", ["a", "b", "c", "X"]);
    let start = m.state("start");
    let got_a = m.state("got_a"); // crossed an `a` on the left; find right end
    let got_b = m.state("got_b");
    let match_a = m.state("match_a"); // at right end: last live must be `a`
    let match_b = m.state("match_b");
    let rewind = m.state("rewind");
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");

    // start: at ⊢ or inside X prefix, find the first live letter.
    m.on(start, MARKER_LEFT, MARKER_LEFT, Move::Right, start);
    m.on(start, X, X, Move::Right, start);
    m.on(start, A, X, Move::Right, got_a);
    m.on(start, B, X, Move::Right, got_b);
    // No live letters left: palindrome.
    m.on(start, MARKER_RIGHT, MARKER_RIGHT, Move::Left, acc);

    // Walk right to the end of the live region.
    for (walk, match_state) in [(got_a, match_a), (got_b, match_b)] {
        m.on(walk, A, A, Move::Right, walk);
        m.on(walk, B, B, Move::Right, walk);
        m.on(walk, X, X, Move::Left, match_state);
        m.on(walk, MARKER_RIGHT, MARKER_RIGHT, Move::Left, match_state);
    }

    // match_a: the cell under the head is the last live letter (or X if
    // the crossed letter was the only one — odd-length middle).
    m.on(match_a, A, X, Move::Left, rewind);
    m.on(match_a, B, B, Move::Left, rej);
    m.on(match_a, X, X, Move::Left, acc); // single middle letter consumed
    m.on(match_a, MARKER_LEFT, MARKER_LEFT, Move::Right, acc);
    m.on(match_b, B, X, Move::Left, rewind);
    m.on(match_b, A, A, Move::Left, rej);
    m.on(match_b, X, X, Move::Left, acc);
    m.on(match_b, MARKER_LEFT, MARKER_LEFT, Move::Right, acc);

    // rewind to the left end of the live region.
    m.on(rewind, A, A, Move::Left, rewind);
    m.on(rewind, B, B, Move::Left, rewind);
    m.on(rewind, X, X, Move::Right, start);
    m.on(rewind, MARKER_LEFT, MARKER_LEFT, Move::Right, start);

    m.build()
}

/// Majority over `{a, b}`: accepts iff strictly more `a`s than `b`s, by
/// repeatedly crossing off one `a` and one `b`.
pub fn majority() -> Lba {
    use sym::{A, B, X};
    let mut m = LbaBuilder::new("majority", ["a", "b", "c", "X"]);
    let start = m.state("start");
    let find_b = m.state("find_b"); // crossed an a, cross a b anywhere
    let rewind = m.state("rewind");
    let only_a = m.state("only_a"); // no b found: any live a remains ⇒ accept
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");

    m.on(start, MARKER_LEFT, MARKER_LEFT, Move::Right, start);
    m.on(start, X, X, Move::Right, start);
    m.on(start, A, X, Move::Right, find_b);
    // Leading b with no a yet: cross it and look for an a instead — by
    // symmetry, cross the b and hunt an a; simplest: treat `b` first like
    // `a` first with roles swapped via a dedicated pair of states.
    m.on(start, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej); // all crossed: equal ⇒ not a strict majority
    let find_a = m.state("find_a");
    m.on(start, B, X, Move::Right, find_a);

    m.on(find_b, A, A, Move::Right, find_b);
    m.on(find_b, X, X, Move::Right, find_b);
    m.on(find_b, B, X, Move::Left, rewind);
    // No b remains: strictly more a's iff at least the crossed one ⇒ accept
    // (there is one un-matched a — the one just crossed — plus possibly
    // more live ones).
    m.on(find_b, MARKER_RIGHT, MARKER_RIGHT, Move::Left, only_a);

    m.on(find_a, B, B, Move::Right, find_a);
    m.on(find_a, X, X, Move::Right, find_a);
    m.on(find_a, A, X, Move::Left, rewind);
    // No a remains: b-majority or tie ⇒ reject.
    m.on(find_a, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);

    for s in [A, B, X] {
        m.on(rewind, s, s, Move::Left, rewind);
        m.on(only_a, s, s, Move::Left, only_a);
    }
    m.on(rewind, MARKER_LEFT, MARKER_LEFT, Move::Right, start);
    m.on(only_a, MARKER_LEFT, MARKER_LEFT, Move::Right, acc);

    m.build()
}

/// The context-free classic `{aⁿbⁿ : n ≥ 0}`: cross off one `a` and one
/// `b` per sweep. Sits strictly between the regular and context-sensitive
/// examples in the Chomsky hierarchy the paper's Section 6 points at.
pub fn anbn() -> Lba {
    use sym::{A, B, X};
    let mut m = LbaBuilder::new("a^n b^n", ["a", "b", "c", "X"]);
    let start = m.state("start");
    let seek_a = m.state("seek_a");
    let seek_b = m.state("seek_b");
    let check_tail = m.state("check_tail");
    let rewind = m.state("rewind");
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");

    m.on(start, MARKER_LEFT, MARKER_LEFT, Move::Right, seek_a);
    m.on(seek_a, X, X, Move::Right, seek_a);
    m.on(seek_a, A, X, Move::Right, seek_b);
    m.on(seek_a, B, B, Move::Left, rej);
    m.on(seek_a, MARKER_RIGHT, MARKER_RIGHT, Move::Left, acc);

    m.on(seek_b, X, X, Move::Right, seek_b);
    m.on(seek_b, A, A, Move::Right, seek_b);
    m.on(seek_b, B, X, Move::Right, check_tail);
    m.on(seek_b, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);

    m.on(check_tail, B, B, Move::Right, check_tail);
    m.on(check_tail, X, X, Move::Right, check_tail);
    m.on(check_tail, A, A, Move::Left, rej);
    m.on(check_tail, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rewind);

    for s in [A, B, X] {
        m.on(rewind, s, s, Move::Left, rewind);
    }
    m.on(rewind, MARKER_LEFT, MARKER_LEFT, Move::Right, seek_a);
    m.build()
}

/// Single-sweep machine accepting strings over `{a}` whose length is
/// divisible by 3 — a regular-language baseline (DFA as LBA).
pub fn length_mod3() -> Lba {
    use sym::A;
    let mut m = LbaBuilder::new("|w| ≡ 0 (mod 3)", ["a", "b", "c", "X"]);
    let s0 = m.state("r0");
    let s1 = m.state("r1");
    let s2 = m.state("r2");
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");
    m.on(s0, MARKER_LEFT, MARKER_LEFT, Move::Right, s0);
    m.on(s0, A, A, Move::Right, s1);
    m.on(s1, A, A, Move::Right, s2);
    m.on(s2, A, A, Move::Right, s0);
    m.on(s0, MARKER_RIGHT, MARKER_RIGHT, Move::Left, acc);
    m.on(s1, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);
    m.on(s2, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);
    m.build()
}

/// A *randomized* LBA whose verdict is nonetheless deterministic: it
/// checks that the input contains at least one `b`, scanning left-to-right
/// but randomly dawdling (each live cell is re-scanned with probability
/// 1/2). Exercises rLBA choice sets with a testable language.
pub fn random_walk_contains_b() -> Lba {
    use sym::{A, B, C, X};
    let mut m = LbaBuilder::new("random-dawdle contains-b", ["a", "b", "c", "X"]);
    let scan = m.state("scan");
    let acc = m.accept_state("accept");
    let rej = m.reject_state("reject");
    m.on(scan, MARKER_LEFT, MARKER_LEFT, Move::Right, scan);
    for live in [A, C, X] {
        // Randomly either advance or bounce in place (left then back is
        // impossible in one action; dawdle = rewrite and stay moving right
        // vs. stepping left to the previous cell and returning via scan).
        m.on_random(
            scan,
            live,
            vec![
                Action {
                    write: live,
                    mv: Move::Right,
                    state: scan,
                },
                Action {
                    write: live,
                    mv: Move::Left,
                    state: scan,
                },
            ],
        );
    }
    m.on(scan, B, B, Move::Right, acc);
    m.on(scan, MARKER_RIGHT, MARKER_RIGHT, Move::Left, rej);
    m.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAX: u64 = 1_000_000;

    #[test]
    fn abc_accepts_exactly_the_language() {
        let m = abc_equal();
        for (word, expect) in [
            ("", true),
            ("abc", true),
            ("aabbcc", true),
            ("aaabbbccc", true),
            ("ab", false),
            ("abcc", false),
            ("aabbc", false),
            ("acb", false),
            ("ba", false),
            ("cba", false),
            ("aabcbc", false),
            ("abcabc", false),
            ("c", false),
            ("a", false),
        ] {
            assert_eq!(
                m.accepts(&encode_abc(word), MAX).unwrap(),
                expect,
                "word {word:?}"
            );
        }
    }

    #[test]
    fn abc_brute_force_against_definition() {
        let m = abc_equal();
        // All words over {a,b,c} of length ≤ 6.
        fn words(len: usize) -> Vec<String> {
            if len == 0 {
                return vec![String::new()];
            }
            words(len - 1)
                .into_iter()
                .flat_map(|w| ["a", "b", "c"].iter().map(move |c| format!("{w}{c}")))
                .collect()
        }
        for len in 0..=6 {
            for w in words(len) {
                let n = w.len() / 3;
                let expect = w.len() % 3 == 0
                    && w == format!("{}{}{}", "a".repeat(n), "b".repeat(n), "c".repeat(n));
                assert_eq!(m.accepts(&encode_abc(&w), MAX).unwrap(), expect, "{w:?}");
            }
        }
    }

    #[test]
    fn palindrome_brute_force() {
        let m = palindrome();
        fn words(len: usize) -> Vec<String> {
            if len == 0 {
                return vec![String::new()];
            }
            words(len - 1)
                .into_iter()
                .flat_map(|w| ["a", "b"].iter().map(move |c| format!("{w}{c}")))
                .collect()
        }
        for len in 0..=8 {
            for w in words(len) {
                let expect = w.chars().rev().collect::<String>() == w;
                assert_eq!(m.accepts(&encode_abc(&w), MAX).unwrap(), expect, "{w:?}");
            }
        }
    }

    #[test]
    fn majority_brute_force() {
        let m = majority();
        fn words(len: usize) -> Vec<String> {
            if len == 0 {
                return vec![String::new()];
            }
            words(len - 1)
                .into_iter()
                .flat_map(|w| ["a", "b"].iter().map(move |c| format!("{w}{c}")))
                .collect()
        }
        for len in 0..=7 {
            for w in words(len) {
                let a = w.matches('a').count();
                let b = w.matches('b').count();
                assert_eq!(
                    m.accepts(&encode_abc(&w), MAX).unwrap(),
                    a > b,
                    "{w:?} (a={a}, b={b})"
                );
            }
        }
    }

    #[test]
    fn anbn_brute_force_against_definition() {
        let m = anbn();
        fn words(len: usize) -> Vec<String> {
            if len == 0 {
                return vec![String::new()];
            }
            words(len - 1)
                .into_iter()
                .flat_map(|w| ["a", "b"].iter().map(move |c| format!("{w}{c}")))
                .collect()
        }
        for len in 0..=8 {
            for w in words(len) {
                let n = w.len() / 2;
                let expect = w.len() % 2 == 0 && w == format!("{}{}", "a".repeat(n), "b".repeat(n));
                assert_eq!(m.accepts(&encode_abc(&w), MAX).unwrap(), expect, "{w:?}");
            }
        }
    }

    #[test]
    fn anbn_runs_on_a_path_of_nfsm_nodes() {
        let m = anbn();
        for (w, expect) in [("", true), ("ab", true), ("aabb", true), ("abab", false)] {
            let (verdict, _) =
                crate::to_nfsm::run_on_path(&m, &encode_abc(w), 0, 1_000_000).unwrap();
            assert_eq!(verdict, expect, "{w:?}");
        }
    }

    #[test]
    fn length_mod3_is_a_dfa() {
        let m = length_mod3();
        for n in 0..12 {
            let w = "a".repeat(n);
            assert_eq!(m.accepts(&encode_abc(&w), MAX).unwrap(), n % 3 == 0, "{n}");
        }
    }

    #[test]
    fn randomized_machine_verdict_is_seed_independent() {
        let m = random_walk_contains_b();
        for (word, expect) in [("aab", true), ("b", true), ("aaca", false), ("", false)] {
            for seed in 0..20 {
                let out = m.run(&encode_abc(word), seed, MAX).unwrap();
                assert_eq!(out.accepted, expect, "{word:?} seed {seed}");
            }
        }
    }

    #[test]
    fn randomized_machine_paths_differ_across_seeds() {
        let m = random_walk_contains_b();
        let steps: std::collections::HashSet<u64> = (0..20)
            .map(|seed| m.run(&encode_abc("aaaab"), seed, MAX).unwrap().steps)
            .collect();
        assert!(steps.len() > 1, "dawdling should vary run lengths");
    }
}
