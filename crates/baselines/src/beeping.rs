//! A beeping-model MIS in the spirit of Afek, Alon, Bar-Joseph, Cornejo,
//! Haeupler and Kuhn (DISC 2011), the model the paper identifies as
//! "one-two-many counting with `b = 1`" — but with synchronous rounds and
//! unbounded local memory, which is where it exceeds nFSM power.
//!
//! We implement the simple `O(log² n)`-style variant that assumes
//! knowledge of (an upper bound on) `n`: execution proceeds in phases of
//! `c·log n` slots; in each slot every live candidate beeps with
//! probability ½ and drops its candidacy upon hearing a beep while
//! silent; a candidate surviving a whole phase joins the MIS, beeps a
//! victory signal, and its neighbors retire. Note the `Θ(log n)`-length
//! *counted, aligned* phases — exactly the resource the nFSM model lacks
//! (Section 4's discussion), which is why the paper had to invent soft
//! tournaments instead.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_graph::{Graph, NodeId};

/// Result of a beeping MIS run.
#[derive(Clone, Debug)]
pub struct BeepMisRun {
    /// Membership vector.
    pub in_set: Vec<bool>,
    /// Total beeping slots (the model's round unit).
    pub slots: u64,
    /// Phases executed.
    pub phases: u64,
}

/// Runs the beeping MIS with phase length `ceil(c · log2 n)`, `c = 2`.
pub fn beeping_mis(g: &Graph, seed: u64) -> BeepMisRun {
    let n = g.node_count();
    if n == 0 {
        return BeepMisRun {
            in_set: Vec::new(),
            slots: 0,
            phases: 0,
        };
    }
    let phase_len = (2.0 * (n.max(2) as f64).log2()).ceil() as u64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut in_set = vec![false; n];
    // live: still needs to decide; candidate: competing this phase.
    let mut live = vec![true; n];
    let mut slots = 0u64;
    let mut phases = 0u64;
    while live.iter().any(|&l| l) {
        phases += 1;
        let mut candidate: Vec<bool> = live.clone();
        for _ in 0..phase_len {
            slots += 1;
            let mut beeps = vec![false; n];
            for v in 0..n {
                if candidate[v] && live[v] {
                    beeps[v] = rng.gen_bool(0.5);
                }
            }
            for v in 0..n {
                if candidate[v] && live[v] && !beeps[v] {
                    let heard = g.neighbors(v as NodeId).iter().any(|&u| beeps[u as usize]);
                    if heard {
                        candidate[v] = false;
                    }
                }
            }
        }
        // Victory slot: surviving candidates beep; hearing neighbors
        // retire. Adjacent survivors are possible only if they tied every
        // slot (probability 2^{-phase_len} each pair); resolve by id to
        // keep the run well-defined — with phase_len = 2·log n this is the
        // same w.h.p. guarantee as the published algorithm.
        slots += 1;
        let mut joins = Vec::new();
        for v in 0..n {
            if live[v]
                && candidate[v]
                && g.neighbors(v as NodeId)
                    .iter()
                    .all(|&u| !(live[u as usize] && candidate[u as usize] && (u as usize) < v))
            {
                joins.push(v);
            }
        }
        for v in joins {
            in_set[v] = true;
            live[v] = false;
            for &u in g.neighbors(v as NodeId) {
                live[u as usize] = false;
            }
        }
    }
    BeepMisRun {
        in_set,
        slots,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn produces_valid_mis() {
        let graphs = [
            generators::path(40),
            generators::cycle(21),
            generators::gnp(60, 0.1, 5),
            generators::complete(9),
            generators::star(15),
            stoneage_graph::Graph::empty(3),
        ];
        for g in &graphs {
            for seed in 0..5 {
                let run = beeping_mis(g, seed);
                assert!(
                    validate::is_maximal_independent_set(g, &run.in_set),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn slot_counts_scale_polylogarithmically() {
        for &n in &[64usize, 256, 1024] {
            let g = generators::gnp(n, 6.0 / n as f64, 2);
            let run = beeping_mis(&g, 2);
            let bound = 40.0 * (n as f64).log2().powi(2);
            assert!((run.slots as f64) < bound, "n={n}: {} slots", run.slots);
        }
    }

    #[test]
    fn zero_node_graph() {
        let run = beeping_mis(&stoneage_graph::Graph::empty(0), 0);
        assert_eq!(run.slots, 0);
        assert!(run.in_set.is_empty());
    }
}
