//! Randomized maximal matching by proposals, in the synchronous
//! message-passing model — the baseline for the paper's deferred maximal
//! matching result (R8/E14): the nFSM version requires a small model
//! extension (see `stoneage-protocols`' matching module), while message
//! passing does it directly in `O(log n)` rounds.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use stoneage_graph::{Graph, NodeId};

/// Result of a message-passing matching run.
#[derive(Clone, Debug)]
pub struct MatchingRun {
    /// The matched edges.
    pub matched: Vec<(NodeId, NodeId)>,
    /// Synchronous rounds used (each phase is two rounds:
    /// propose + accept).
    pub rounds: u64,
}

/// Runs the proposal algorithm: each phase, every free node flips a coin;
/// proposers send a proposal to one uniformly random free neighbor;
/// listeners accept one incoming proposal uniformly at random.
pub fn proposal_matching(g: &Graph, seed: u64) -> MatchingRun {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut free = vec![true; n];
    let mut matched = Vec::new();
    let mut rounds = 0u64;
    loop {
        // A free node with no free neighbor can never match: done when
        // none remains.
        let active: Vec<usize> = (0..n)
            .filter(|&v| free[v] && g.neighbors(v as NodeId).iter().any(|&u| free[u as usize]))
            .collect();
        if active.is_empty() {
            break;
        }
        rounds += 2;
        // Round 1: proposers pick a free neighbor.
        let mut proposals: Vec<Vec<usize>> = vec![Vec::new(); n]; // to -> from
        for &v in &active {
            if rng.gen_bool(0.5) {
                let free_nbrs: Vec<NodeId> = g
                    .neighbors(v as NodeId)
                    .iter()
                    .copied()
                    .filter(|&u| free[u as usize])
                    .collect();
                if let Some(&target) = free_nbrs.choose(&mut rng) {
                    proposals[target as usize].push(v);
                }
            }
        }
        // Round 2: listeners (non-proposers) accept one proposal.
        for v in 0..n {
            if !free[v] || proposals[v].is_empty() {
                continue;
            }
            let candidates: Vec<usize> =
                proposals[v].iter().copied().filter(|&u| free[u]).collect();
            if let Some(&partner) = candidates.choose(&mut rng) {
                free[v] = false;
                free[partner] = false;
                matched.push((partner as NodeId, v as NodeId));
            }
        }
    }
    MatchingRun { matched, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn produces_maximal_matchings() {
        let graphs = [
            generators::path(40),
            generators::cycle(31),
            generators::gnp(70, 0.1, 4),
            generators::complete(11),
            generators::star(20),
            generators::random_tree(50, 6),
            stoneage_graph::Graph::empty(5),
        ];
        for g in &graphs {
            for seed in 0..5 {
                let run = proposal_matching(g, seed);
                assert!(
                    validate::is_maximal_matching(g, &run.matched),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn rounds_scale_logarithmically() {
        for &n in &[128usize, 512, 2048] {
            let g = generators::gnp(n, 6.0 / n as f64, 8);
            let run = proposal_matching(&g, 8);
            assert!(
                (run.rounds as f64) < 12.0 * (n as f64).log2(),
                "n={n}: {} rounds",
                run.rounds
            );
        }
    }

    #[test]
    fn listeners_only_accept_free_proposers() {
        // Regression shape: proposer matched earlier in the same loop must
        // not be accepted twice — validity of the matching covers it.
        let g = generators::complete(6);
        for seed in 0..20 {
            let run = proposal_matching(&g, seed);
            assert!(validate::is_matching(&g, &run.matched));
        }
    }
}
