//! Luby's randomized MIS (SIAM J. Comput. 1986) and the degree-weighted
//! Alon–Babai–Itai-style variant, in the synchronous message-passing
//! model.
//!
//! These are the paper's Section 4 reference points: `O(log n)` rounds,
//! but each round exchanges `Θ(log n)`-bit values with *per-neighbor*
//! messages and unbounded local arithmetic — exactly the capabilities the
//! nFSM model forbids.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_graph::{Graph, NodeId};

/// Result of a message-passing MIS run.
#[derive(Clone, Debug)]
pub struct MisRun {
    /// Membership vector.
    pub in_set: Vec<bool>,
    /// Synchronous rounds used (phases of the algorithm).
    pub rounds: u64,
}

/// Luby's algorithm, random-priority variant: each phase every live node
/// draws a uniform value; local minima join the MIS and their
/// neighborhoods retire.
pub fn luby_mis(g: &Graph, seed: u64) -> MisRun {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut in_set = vec![false; n];
    let mut live = vec![true; n];
    let mut rounds = 0u64;
    let mut priorities = vec![0u64; n];
    while live.iter().any(|&l| l) {
        rounds += 1;
        for v in 0..n {
            if live[v] {
                priorities[v] = rng.gen();
            }
        }
        let mut joins = Vec::new();
        for v in 0..n {
            if !live[v] {
                continue;
            }
            let my = (priorities[v], v);
            let is_min = g
                .neighbors(v as NodeId)
                .iter()
                .filter(|&&u| live[u as usize])
                .all(|&u| (priorities[u as usize], u as usize) > my);
            if is_min {
                joins.push(v);
            }
        }
        for v in joins {
            in_set[v] = true;
            live[v] = false;
            for &u in g.neighbors(v as NodeId) {
                live[u as usize] = false;
            }
        }
    }
    MisRun { in_set, rounds }
}

/// The degree-weighted variant (à la Luby's second analysis / ABI): each
/// live node marks itself with probability `1 / (2·deg)`, conflicts are
/// resolved toward the higher degree (ties by id), marked survivors join.
pub fn luby_degree_mis(g: &Graph, seed: u64) -> MisRun {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut in_set = vec![false; n];
    let mut live = vec![true; n];
    let mut rounds = 0u64;
    let mut marked = vec![false; n];
    let live_degree = |g: &Graph, live: &[bool], v: usize| {
        g.neighbors(v as NodeId)
            .iter()
            .filter(|&&u| live[u as usize])
            .count()
    };
    while live.iter().any(|&l| l) {
        rounds += 1;
        for v in 0..n {
            marked[v] = false;
            if live[v] {
                let d = live_degree(g, &live, v);
                if d == 0 {
                    marked[v] = true;
                } else {
                    marked[v] = rng.gen_bool(1.0 / (2.0 * d as f64));
                }
            }
        }
        // Conflict resolution: an edge with both endpoints marked keeps
        // only the endpoint of larger live degree (ties: larger id).
        let mut keep = marked.clone();
        for (u, v) in g.edges() {
            let (u, v) = (u as usize, v as usize);
            if marked[u] && marked[v] && live[u] && live[v] {
                let du = live_degree(g, &live, u);
                let dv = live_degree(g, &live, v);
                if (du, u) < (dv, v) {
                    keep[u] = false;
                } else {
                    keep[v] = false;
                }
            }
        }
        for v in 0..n {
            if live[v] && keep[v] {
                in_set[v] = true;
                live[v] = false;
                for &u in g.neighbors(v as NodeId) {
                    live[u as usize] = false;
                }
            }
        }
    }
    MisRun { in_set, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn luby_produces_valid_mis_on_families() {
        let graphs = [
            generators::path(50),
            generators::cycle(33),
            generators::complete(12),
            generators::gnp(80, 0.1, 2),
            generators::random_tree(60, 3),
            generators::star(25),
            stoneage_graph::Graph::empty(7),
        ];
        for g in &graphs {
            for seed in 0..5 {
                let run = luby_mis(g, seed);
                assert!(
                    validate::is_maximal_independent_set(g, &run.in_set),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn degree_variant_produces_valid_mis() {
        for seed in 0..5 {
            let g = generators::gnp(70, 0.1, seed);
            let run = luby_degree_mis(&g, seed);
            assert!(validate::is_maximal_independent_set(&g, &run.in_set));
        }
    }

    #[test]
    fn luby_rounds_are_logarithmic() {
        // On G(n, 8/n), round counts should grow very slowly with n.
        let mut prev = 0.0;
        for &n in &[64usize, 256, 1024, 4096] {
            let mut total = 0u64;
            let reps = 5;
            for seed in 0..reps {
                let g = generators::gnp(n, 8.0 / n as f64, seed);
                total += luby_mis(&g, seed).rounds;
            }
            let avg = total as f64 / reps as f64;
            assert!(avg < 4.0 * (n as f64).log2(), "n={n} avg={avg}");
            if prev > 0.0 {
                assert!(avg < prev * 2.5, "n={n}: {prev} -> {avg}");
            }
            prev = avg;
        }
    }

    #[test]
    fn empty_graph_takes_one_round() {
        let g = stoneage_graph::Graph::empty(5);
        let run = luby_mis(&g, 0);
        assert_eq!(run.rounds, 1);
        assert!(run.in_set.iter().all(|&x| x));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::gnp(50, 0.1, 9);
        assert_eq!(luby_mis(&g, 4).in_set, luby_mis(&g, 4).in_set);
    }
}
