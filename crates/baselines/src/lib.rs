//! Classical distributed algorithms the paper positions the nFSM model
//! against, implemented in their native (much stronger) models:
//!
//! * [`luby`] — Luby's randomized MIS and the Alon–Babai–Itai-style
//!   degree-weighted variant, in the synchronous message-passing model
//!   (`O(log n)` rounds).
//! * [`metivier`] — the Métivier–Robson–Saheb-Djahromi–Zemmari MIS with
//!   optimal bit complexity (random bits exchanged one per round).
//! * [`beeping`] — a beeping-model MIS in the spirit of Afek et al.,
//!   which the paper singles out as "one-two-many counting with `b = 1`".
//! * [`cole_vishkin`] — deterministic 3-coloring of directed paths and
//!   rooted trees in `O(log* n)` rounds via the Cole–Vishkin bit trick.
//! * [`matching`] — randomized maximal matching by proposals in the
//!   message-passing model.
//!
//! All functions return both the solution and the number of synchronous
//! rounds used, so the experiment harness can compare round-complexity
//! *shapes* against the nFSM protocols (E11/E12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beeping;
pub mod cole_vishkin;
pub mod luby;
pub mod matching;
pub mod metivier;
