//! The Métivier–Robson–Saheb-Djahromi–Zemmari MIS (Distributed Computing
//! 2011): the random-priority competition resolved by exchanging random
//! bits **one per round**, achieving optimal `O(log n)` bit complexity.
//!
//! The paper cites this algorithm ("cf. Algorithm B in \[29\]") when it
//! discusses why even 1-bit-per-round message passing still exceeds nFSM
//! power: the bit protocol maintains Θ(log n)-length aligned phases, which
//! a finite-state machine cannot count. We report both phase counts and
//! total bit rounds so experiment E11 can display the contrast.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use stoneage_graph::{Graph, NodeId};

/// Result of a Métivier-style MIS run.
#[derive(Clone, Debug)]
pub struct BitMisRun {
    /// Membership vector.
    pub in_set: Vec<bool>,
    /// Competition phases (comparable to Luby rounds).
    pub phases: u64,
    /// Total single-bit exchange rounds across all phases.
    pub bit_rounds: u64,
}

/// Runs the bit-exchange MIS. In each phase, live nodes reveal independent
/// fair bits one round at a time; a node drops out of contention the first
/// time a live neighbor reveals 1 while it revealed 0. Nodes still in
/// contention when all rivalries are settled join the MIS.
pub fn metivier_mis(g: &Graph, seed: u64) -> BitMisRun {
    let n = g.node_count();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut in_set = vec![false; n];
    let mut live = vec![true; n];
    let mut phases = 0u64;
    let mut bit_rounds = 0u64;
    while live.iter().any(|&l| l) {
        phases += 1;
        // `contender[v]`: v has not yet lost a bit duel this phase.
        let mut contender: Vec<bool> = live.clone();
        // Active duels: edges between live contenders, still tied.
        let mut tied: Vec<(usize, usize)> = g
            .edges()
            .filter(|&(u, v)| live[u as usize] && live[v as usize])
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        let mut bits = vec![false; n];
        while !tied.is_empty() {
            bit_rounds += 1;
            for v in 0..n {
                if live[v] && contender[v] {
                    bits[v] = rng.gen();
                }
            }
            tied.retain(|&(u, v)| {
                if !contender[u] || !contender[v] {
                    return false;
                }
                match (bits[u], bits[v]) {
                    (true, false) => {
                        contender[v] = false;
                        false
                    }
                    (false, true) => {
                        contender[u] = false;
                        false
                    }
                    _ => true, // tie: compare another bit next round
                }
            });
        }
        // Winners: contenders whose every live neighbor lost its duels
        // against *someone* — as in the original, winners are local
        // maxima of the revealed bit strings; with pairwise duels settled,
        // any contender with no contending live neighbor joins.
        let mut joins = Vec::new();
        for v in 0..n {
            if live[v]
                && contender[v]
                && g.neighbors(v as NodeId)
                    .iter()
                    .all(|&u| !(live[u as usize] && contender[u as usize]))
            {
                joins.push(v);
            }
        }
        // Contenders adjacent to other contenders can remain when duel
        // outcomes are intransitive; they simply try again next phase.
        for v in joins {
            in_set[v] = true;
            live[v] = false;
            for &u in g.neighbors(v as NodeId) {
                live[u as usize] = false;
            }
        }
    }
    BitMisRun {
        in_set,
        phases,
        bit_rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn produces_valid_mis() {
        let graphs = [
            generators::path(40),
            generators::cycle(25),
            generators::gnp(60, 0.1, 1),
            generators::complete(10),
            generators::random_tree(50, 2),
            stoneage_graph::Graph::empty(4),
        ];
        for g in &graphs {
            for seed in 0..5 {
                let run = metivier_mis(g, seed);
                assert!(
                    validate::is_maximal_independent_set(g, &run.in_set),
                    "{g:?} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn bit_rounds_exceed_phases() {
        let g = generators::gnp(80, 0.1, 3);
        let run = metivier_mis(&g, 3);
        assert!(run.bit_rounds >= run.phases);
    }

    #[test]
    fn bit_rounds_scale_gently() {
        for &n in &[128usize, 512, 2048] {
            let g = generators::gnp(n, 6.0 / n as f64, 7);
            let run = metivier_mis(&g, 7);
            let bound = 30.0 * (n as f64).log2().powi(2);
            assert!(
                (run.bit_rounds as f64) < bound,
                "n={n}: {} bit rounds",
                run.bit_rounds
            );
        }
    }
}
