//! Cole–Vishkin deterministic 3-coloring of rooted (directed) trees in
//! `O(log* n)` rounds.
//!
//! This is Section 5's reference point: with *directed* trees (each node
//! knows its parent port), `Θ(log n)`-bit initial colors (the node ids),
//! and unbounded local bit arithmetic, a deterministic `O(log* n)`
//! algorithm exists. The paper's nFSM protocol instead works on
//! *undirected* trees with constant everything, paying `Θ(log n)` — and
//! Kothapalli et al. show that is optimal for O(1)-size messages. The
//! experiment E12 plots both shapes.

use stoneage_graph::{Graph, NodeId};

/// Result of a Cole–Vishkin run.
#[derive(Clone, Debug)]
pub struct CvRun {
    /// Proper coloring with colors in `0..3`.
    pub colors: Vec<u32>,
    /// Synchronous rounds used (CV iterations + shift-down/recolor).
    pub rounds: u64,
}

/// Roots an undirected tree at `root` and returns the parent array
/// (`parent[root] = root`).
///
/// # Panics
/// Panics if `g` is not a tree.
pub fn root_tree(g: &Graph, root: NodeId) -> Vec<NodeId> {
    assert!(
        stoneage_graph::traversal::is_tree(g),
        "input must be a tree"
    );
    let n = g.node_count();
    let mut parent = vec![NodeId::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    parent[root as usize] = root;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if parent[u as usize] == NodeId::MAX {
                parent[u as usize] = v;
                queue.push_back(u);
            }
        }
    }
    parent
}

/// The Cole–Vishkin bit trick: from a proper coloring (vs. parent), derive
/// a new proper coloring with exponentially fewer bits.
fn cv_step(colors: &[u64], parent: &[NodeId]) -> Vec<u64> {
    colors
        .iter()
        .enumerate()
        .map(|(v, &c)| {
            let pc = if parent[v] as usize == v {
                // Root: compete against a virtual parent differing in bit 0.
                c ^ 1
            } else {
                colors[parent[v] as usize]
            };
            let diff = c ^ pc;
            debug_assert_ne!(diff, 0, "parent and child share a color");
            let i = diff.trailing_zeros() as u64;
            2 * i + ((c >> i) & 1)
        })
        .collect()
}

/// Runs Cole–Vishkin 3-coloring on the tree `g` rooted at `root`.
pub fn cole_vishkin_3color(g: &Graph, root: NodeId) -> CvRun {
    let n = g.node_count();
    if n == 0 {
        return CvRun {
            colors: Vec::new(),
            rounds: 0,
        };
    }
    let parent = root_tree(g, root);
    let mut colors: Vec<u64> = (0..n as u64).collect();
    let mut rounds = 0u64;
    // Iterate the bit trick until only colors {0..5} remain.
    while colors.iter().any(|&c| c >= 6) {
        colors = cv_step(&colors, &parent);
        rounds += 1;
    }
    // Reduce 6 → 3: repeatedly shift down (each node adopts its parent's
    // color, making sibling colors equal), then retire one top color.
    for retire in (3..6u64).rev() {
        // Shift down.
        let shifted: Vec<u64> = (0..n)
            .map(|v| {
                if parent[v] as usize == v {
                    // Root picks a color different from its own children's
                    // new color (= old root color): any other in 0..3.
                    (colors[v] + 1) % 3
                } else {
                    colors[parent[v] as usize]
                }
            })
            .collect();
        colors = shifted;
        rounds += 1;
        // Every node of color `retire` picks the smallest color unused by
        // its (parent, children) — at most 2 distinct after shift-down.
        let snapshot = colors.clone();
        for v in 0..n {
            if snapshot[v] == retire {
                let pc = snapshot[parent[v] as usize];
                let cc = g
                    .neighbors(v as NodeId)
                    .iter()
                    .filter(|&&u| parent[u as usize] == v as NodeId)
                    .map(|&u| snapshot[u as usize])
                    .next();
                let free = (0..3u64)
                    .find(|&c| Some(c) != Some(pc) && Some(c) != cc)
                    .expect("two blocked colors leave one of three free");
                colors[v] = free;
            }
        }
        rounds += 1;
    }
    CvRun {
        colors: colors.into_iter().map(|c| c as u32).collect(),
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stoneage_graph::{generators, validate};

    #[test]
    fn colors_paths_and_trees_properly() {
        let cases = [
            generators::path(100),
            generators::path(2),
            generators::star(30),
            generators::kary_tree(63, 2),
            generators::random_tree(200, 4),
            generators::caterpillar(12, 3),
        ];
        for g in &cases {
            let run = cole_vishkin_3color(g, 0);
            assert!(validate::is_proper_k_coloring(g, &run.colors, 3), "{g:?}");
        }
    }

    #[test]
    fn single_node_tree() {
        let g = stoneage_graph::Graph::empty(1);
        let run = cole_vishkin_3color(&g, 0);
        assert!(run.colors[0] < 3);
    }

    #[test]
    fn rounds_are_log_star_flat() {
        // log* growth: round counts should be essentially constant across
        // three orders of magnitude.
        let r1 = cole_vishkin_3color(&generators::path(100), 0).rounds;
        let r2 = cole_vishkin_3color(&generators::path(10_000), 0).rounds;
        assert!(r2 <= r1 + 2, "r(100) = {r1}, r(10000) = {r2}");
        assert!(r2 < 20);
    }

    #[test]
    fn rooting_builds_parent_pointers() {
        let g = generators::path(5);
        let parent = root_tree(&g, 2);
        assert_eq!(parent[2], 2);
        assert_eq!(parent[1], 2);
        assert_eq!(parent[0], 1);
        assert_eq!(parent[3], 2);
        assert_eq!(parent[4], 3);
    }

    #[test]
    #[should_panic(expected = "must be a tree")]
    fn rejects_non_trees() {
        cole_vishkin_3color(&generators::cycle(4), 0);
    }
}
