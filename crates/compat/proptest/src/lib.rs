//! Vendored shim for the subset of the `proptest` API this workspace uses.
//!
//! The build environment is offline, so the real `proptest` crate cannot be
//! fetched. This shim supports the patterns the workspace's property tests
//! are written in:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] ... }`
//! * `#[test] fn name(x in 0usize..50, p in 0.0f64..0.4) { ... }` items
//!   inside the macro, with integer- and float-range strategies;
//! * `prop_assert!` / `prop_assert_eq!` (mapped onto `assert!`/`assert_eq!`).
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled arguments in the panic message (each generated test prints
//! its inputs into the assertion context via the deterministic per-test
//! RNG). Case generation is deterministic per test name, so failures
//! reproduce exactly under `cargo test`.

/// Execution configuration for a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades a little coverage
        // for test-suite latency since several strategies drive whole
        // protocol executions per case.
        ProptestConfig { cases: 48 }
    }
}

/// Deterministic per-test RNG (SplitMix64 stream keyed by the test name).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is a pure function of `key`.
    pub fn deterministic(key: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64; // FNV-1a
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value-generation strategy (here: just uniform ranges).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Property-style assertion; this shim panics like `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Property-style equality assertion; this shim panics like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled instantiations of `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __ctx = format!(
                    concat!("case {}: ", $(stringify!($arg), " = {:?} "),+),
                    __case, $(&$arg),+
                );
                let __result = std::panic::catch_unwind(
                    std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(err) = __result {
                    eprintln!("proptest case failed: {__ctx}");
                    std::panic::resume_unwind(err);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_repeats() {
        let mut a = TestRng::deterministic("k");
        let mut b = TestRng::deterministic("k");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn ranges_respected(x in 2usize..9, p in 0.0f64..0.5, b in 1u8..4) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((0.0..0.5).contains(&p));
            prop_assert!((1..4).contains(&b));
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
