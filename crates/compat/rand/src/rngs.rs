//! Small, fast generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The full internal state of a [`SmallRng`] stream, captured mid-run.
///
/// Restoring via [`SmallRng::from_state`] yields a generator whose
/// future output is bit-identical to the captured one's — the hook the
/// simulation snapshot layer uses to checkpoint and resume RNG streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedState {
    /// The four xoshiro256++ state words.
    pub words: [u64; 4],
}

/// The xoshiro256++ generator — the algorithm `rand` 0.8 uses for
/// `SmallRng` on 64-bit targets. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Captures the generator's full internal state.
    pub fn state(&self) -> SeedState {
        SeedState { words: self.s }
    }

    /// Rebuilds a generator from a captured [`SeedState`]; its stream
    /// continues bit-identically from the capture point.
    pub fn from_state(state: SeedState) -> Self {
        SmallRng { s: state.words }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
