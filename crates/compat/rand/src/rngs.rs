//! Small, fast generators.

use crate::{splitmix64, RngCore, SeedableRng};

/// The xoshiro256++ generator — the algorithm `rand` 0.8 uses for
/// `SmallRng` on 64-bit targets. Not cryptographically secure.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}
