//! Sequence-related sampling: shuffles and element choice.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
