//! Vendored shim for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment is fully offline (no crates.io mirror), so the
//! real `rand` crate cannot be fetched. This shim implements exactly the
//! surface the workspace needs — [`rngs::SmallRng`] (xoshiro256++ seeded
//! via SplitMix64, matching `rand` 0.8's choice on 64-bit targets), the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `gen`, `gen_range`,
//! `gen_bool`, and [`seq::SliceRandom`] with `shuffle`/`choose` — plus a
//! [`rngs::SeedState`] capture/restore API (not part of upstream `rand`)
//! so simulation checkpoints can serialize a stream mid-run and resume it
//! bit-identically.
//!
//! Distribution details (e.g. how `gen_range` maps raw words into a
//! range) are *not* guaranteed to be bit-compatible with upstream `rand`;
//! all determinism contracts in this repository are relative to this shim.

pub mod rngs;
pub mod seq;

/// A source of raw random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (the high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw words (the shim's
/// stand-in for `rand`'s `Standard` distribution).
pub trait Standard {
    /// Draws one value.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::gen_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (uniform over its natural domain; `[0, 1)`
    /// for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p = {p} out of range");
        f64::gen_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert_eq!(seen, [true; 5]);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    fn unit_floats_are_in_range() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn seed_state_round_trip_resumes_the_stream() {
        let mut rng = SmallRng::seed_from_u64(1234);
        for _ in 0..17 {
            rng.next_u64();
        }
        let state = rng.state();
        let mut resumed = SmallRng::from_state(state);
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
        assert_eq!(SmallRng::from_state(state).state(), state);
    }

    #[test]
    fn works_through_unsized_rng_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(0);
        let x = draw(&mut rng);
        assert!(x < 10);
    }
}
