//! Vendored shim for the subset of the `criterion` API this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_with_input`/`bench_function`, `BenchmarkId`, and `Bencher::iter`.
//!
//! The build environment is offline, so the real `criterion` crate cannot
//! be fetched. Statistics are intentionally simple: after one warm-up
//! iteration, each benchmark runs `sample_size` timed samples (each sample
//! auto-scales its iteration count to at least ~5 ms of work) and reports
//! min / mean / max per-iteration wall time on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of a parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a bare name.
    pub fn from_name<S: Into<String>>(name: S) -> Self {
        BenchmarkId { full: name.into() }
    }
}

/// The benchmark driver handed to every target function.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single unparameterized benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, &mut f);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark over the given input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name.into());
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Ends the group (formatting no-op in this shim).
    pub fn finish(self) {}
}

/// Passed to the measured closure; call [`Bencher::iter`] with the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then `sample_size` timed
    /// samples whose iteration counts auto-scale to at least ~5 ms each.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine());
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed();
        let per_sample = ((Duration::from_millis(5).as_nanos() / once.as_nanos().max(1)) as usize)
            .clamp(1, 1_000_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().div_f64(per_sample as f64));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher
        .samples
        .iter()
        .sum::<Duration>()
        .div_f64(bencher.samples.len() as f64);
    println!("{label}: [{min:?} {mean:?} {max:?}] ({sample_size} samples)");
}

/// Declares a group function invoking each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + 1));
    }

    criterion_group!(benches, target);

    #[test]
    fn group_runs_targets() {
        benches();
    }
}
