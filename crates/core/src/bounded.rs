//! One-two-many counting: the paper's symbol set `B = {0, …, b-1, ≥b}` and
//! the truncation map `f_b`.

use std::fmt;

/// The truncation map `f_b : Z≥0 → B` of the paper's Section 2:
/// `f_b(x) = x` for `x < b` and `≥b` otherwise. Returned as a
/// [`BoundedCount`] whose raw value `b` encodes the symbol `≥b`.
///
/// # Panics
/// Panics if `b == 0` (the model requires `b ∈ Z>0`).
pub fn fb(x: usize, b: u8) -> BoundedCount {
    BoundedCount::from_count(x, b)
}

/// An element of `B = {0, 1, …, b-1, ≥b}`: a neighbor-count observed under
/// the one-two-many principle with bounding parameter `b`.
///
/// Internally the raw value is `min(x, b)`; raw value `b` *is* the symbol
/// `≥b`. The paper's identity `f_b(x + y) = min(f_b(x) + f_b(y), b)`
/// (identifying `b` with `≥b`) is [`BoundedCount::saturating_add`], the key
/// fact the synchronizer's simulating feature relies on.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BoundedCount {
    raw: u8,
}

impl BoundedCount {
    /// Observes the exact count `x` under bounding parameter `b`.
    ///
    /// # Panics
    /// Panics if `b == 0`.
    pub fn from_count(x: usize, b: u8) -> Self {
        assert!(b > 0, "the bounding parameter must be positive");
        BoundedCount {
            raw: x.min(b as usize) as u8,
        }
    }

    /// The element `0 ∈ B`.
    pub fn zero() -> Self {
        BoundedCount { raw: 0 }
    }

    /// Constructs directly from a raw value already in `0..=b`.
    ///
    /// # Panics
    /// Panics if `raw > b`.
    pub fn from_raw(raw: u8, b: u8) -> Self {
        assert!(raw <= b, "raw value {raw} exceeds bound {b}");
        BoundedCount { raw }
    }

    /// The raw value: the exact count if below `b`, otherwise `b`
    /// (representing `≥b`).
    pub fn raw(self) -> u8 {
        self.raw
    }

    /// Whether this is the symbol `≥b` (the count was truncated).
    pub fn is_saturated(self, b: u8) -> bool {
        self.raw == b
    }

    /// Whether the observed count is exactly zero.
    pub fn is_zero(self) -> bool {
        self.raw == 0
    }

    /// Whether the observed count is `k` or more (for `k ≤ b`, the only
    /// thresholds an nFSM can test).
    pub fn at_least(self, k: u8) -> bool {
        self.raw >= k
    }

    /// `min(f_b(x) + f_b(y), b)`, which equals `f_b(x + y)` — the paper's
    /// addition on `B` identifying `b` with `≥b`.
    pub fn saturating_add(self, other: BoundedCount, b: u8) -> BoundedCount {
        BoundedCount {
            raw: (self.raw + other.raw).min(b),
        }
    }
}

impl fmt::Debug for BoundedCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fb_truncates_at_b() {
        let b = 3;
        assert_eq!(fb(0, b).raw(), 0);
        assert_eq!(fb(2, b).raw(), 2);
        assert_eq!(fb(3, b).raw(), 3);
        assert_eq!(fb(100, b).raw(), 3);
        assert!(fb(3, b).is_saturated(b));
        assert!(!fb(2, b).is_saturated(b));
    }

    #[test]
    fn beeping_is_b_equals_1() {
        // The paper observes the beeping model is one-two-many with b = 1.
        assert_eq!(fb(0, 1).raw(), 0);
        assert_eq!(fb(1, 1).raw(), 1);
        assert_eq!(fb(7, 1).raw(), 1);
    }

    #[test]
    fn thresholds() {
        let c = fb(2, 3);
        assert!(c.at_least(0));
        assert!(c.at_least(2));
        assert!(!c.at_least(3));
        assert!(!c.is_zero());
        assert!(fb(0, 3).is_zero());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        fb(1, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds bound")]
    fn from_raw_checks_range() {
        BoundedCount::from_raw(4, 3);
    }

    proptest! {
        /// The identity the synchronizer's simulating feature depends on:
        /// f_b(x + y) = min(f_b(x) + f_b(y), b).
        #[test]
        fn fb_is_a_homomorphism(x in 0usize..50, y in 0usize..50, b in 1u8..8) {
            let lhs = fb(x + y, b);
            let rhs = fb(x, b).saturating_add(fb(y, b), b);
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn fb_is_monotone(x in 0usize..50, y in 0usize..50, b in 1u8..8) {
            if x <= y {
                prop_assert!(fb(x, b).raw() <= fb(y, b).raw());
            }
        }

        #[test]
        fn fb_exact_below_bound(x in 0usize..50, b in 1u8..8) {
            if x < b as usize {
                prop_assert_eq!(fb(x, b).raw() as usize, x);
                prop_assert!(!fb(x, b).is_saturated(b));
            } else {
                prop_assert!(fb(x, b).is_saturated(b));
            }
        }
    }
}
