//! Communication letters and alphabets.

use std::fmt;

/// A letter of a protocol's communication alphabet `Σ`, identified by its
/// index into the protocol's [`Alphabet`].
///
/// The *empty symbol* `ε` (no transmission) is deliberately **not** a
/// `Letter`: emissions are `Option<Letter>` with `None` playing `ε`, so the
/// type system rules out querying for `ε` (the paper's `λ : Q → Σ` likewise
/// never queries the empty symbol).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Letter(pub u16);

impl Letter {
    /// The index of this letter within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Letter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// A finite communication alphabet `Σ`: a list of named letters.
///
/// Alphabet sizes must be genuine constants (model requirement (M4)); the
/// compilers in [`crate::sync`] and [`crate::multiq`] grow them only by
/// factors depending on `|Σ|` and `b`, never on the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
}

impl Alphabet {
    /// Builds an alphabet from letter names. Names are for diagnostics and
    /// DOT export; they need not be unique, but usually should be.
    ///
    /// # Panics
    /// Panics if `names` is empty (the model requires `σ₀ ∈ Σ`) or has more
    /// than `u16::MAX` letters.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(names: I) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        assert!(!names.is_empty(), "an alphabet must contain σ₀");
        assert!(names.len() <= u16::MAX as usize, "alphabet too large");
        Alphabet { names }
    }

    /// An alphabet `{m0, m1, …}` of `size` anonymous letters.
    pub fn anonymous(size: usize) -> Self {
        Alphabet::new((0..size).map(|i| format!("m{i}")))
    }

    /// Number of letters `|Σ|`.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty (never true for valid protocols).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The display name of `letter`.
    ///
    /// # Panics
    /// Panics if the letter is out of range.
    pub fn name(&self, letter: Letter) -> &str {
        &self.names[letter.index()]
    }

    /// The letter with the given name, if present.
    pub fn by_name(&self, name: &str) -> Option<Letter> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| Letter(i as u16))
    }

    /// Whether `letter` belongs to this alphabet.
    pub fn contains(&self, letter: Letter) -> bool {
        letter.index() < self.names.len()
    }

    /// Iterator over all letters.
    pub fn letters(&self) -> impl Iterator<Item = Letter> + '_ {
        (0..self.names.len() as u16).map(Letter)
    }

    /// Display name of an emission (`"ε"` for `None`).
    pub fn emission_name(&self, emission: Option<Letter>) -> String {
        match emission {
            Some(l) => self.name(l).to_owned(),
            None => "ε".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_lookup() {
        let a = Alphabet::new(["WIN", "LOSE", "UP0"]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.name(Letter(1)), "LOSE");
        assert_eq!(a.by_name("UP0"), Some(Letter(2)));
        assert_eq!(a.by_name("nope"), None);
        assert!(a.contains(Letter(2)));
        assert!(!a.contains(Letter(3)));
    }

    #[test]
    fn letters_iterates_in_order() {
        let a = Alphabet::anonymous(4);
        let all: Vec<Letter> = a.letters().collect();
        assert_eq!(all, vec![Letter(0), Letter(1), Letter(2), Letter(3)]);
        assert_eq!(a.name(Letter(2)), "m2");
    }

    #[test]
    fn emission_name_renders_epsilon() {
        let a = Alphabet::anonymous(1);
        assert_eq!(a.emission_name(None), "ε");
        assert_eq!(a.emission_name(Some(Letter(0))), "m0");
    }

    #[test]
    #[should_panic(expected = "must contain")]
    fn empty_alphabet_panics() {
        Alphabet::new(Vec::<String>::new());
    }
}
