//! Table-driven protocols: the 8-tuple `Π = ⟨Q, Q_I, Q_O, Σ, σ₀, b, λ, δ⟩`
//! as explicit data, with well-formedness validation and Graphviz export.
//!
//! Small protocols (like the paper's MIS machine, Figure 1, after
//! single-letterization) fit comfortably in a table; large compiled state
//! spaces use the lazy combinators in [`crate::sync`] and [`crate::multiq`]
//! instead.

use std::fmt::Write as _;

use crate::{Alphabet, BoundedCount, Fsm, Letter, Transitions};

/// Index of a state within a [`TableProtocol`].
pub type StateId = u16;

/// Errors detected by [`TableProtocol`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// `Q_I` is empty — nodes would have no initial state.
    NoInputStates,
    /// A referenced state id is out of range.
    BadStateId(StateId),
    /// A referenced letter is outside the alphabet.
    BadLetter(Letter),
    /// `δ(q, o)` has an empty choice set for a state/observation pair.
    EmptyTransition {
        /// The state whose transition set is empty.
        state: StateId,
        /// The raw observation value (`0..=b`).
        observation: u8,
    },
    /// The transition table rows don't match the state count, or a row
    /// doesn't have `b + 1` observation columns.
    MalformedTable,
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::NoInputStates => write!(f, "protocol has no input states"),
            ProtocolError::BadStateId(s) => write!(f, "state id {s} out of range"),
            ProtocolError::BadLetter(l) => write!(f, "letter {l:?} outside alphabet"),
            ProtocolError::EmptyTransition { state, observation } => {
                write!(f, "δ(q{state}, {observation}) is empty")
            }
            ProtocolError::MalformedTable => write!(f, "malformed transition table"),
        }
    }
}

impl std::error::Error for ProtocolError {}

#[derive(Clone, Debug)]
struct StateInfo {
    name: String,
    query: Letter,
    output: Option<u64>,
}

/// An explicit, data-driven nFSM protocol implementing [`Fsm`].
///
/// Build one with [`TableProtocolBuilder`]; construction validates
/// well-formedness (every `(q, o)` cell non-empty, all ids in range,
/// `Q_I ≠ ∅`), so a constructed value is always executable.
#[derive(Clone, Debug)]
pub struct TableProtocol {
    name: String,
    alphabet: Alphabet,
    bound: u8,
    initial_letter: Letter,
    states: Vec<StateInfo>,
    input_states: Vec<StateId>,
    /// `transitions[q][o]` for raw observation `o ∈ 0..=b`.
    transitions: Vec<Vec<Transitions<StateId>>>,
}

impl TableProtocol {
    /// The protocol's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states `|Q|`.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// The display name of a state.
    pub fn state_name(&self, q: StateId) -> &str {
        &self.states[q as usize].name
    }

    /// The state with the given name, if any.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| i as StateId)
    }

    /// The input states `Q_I` in declaration order.
    pub fn input_states(&self) -> &[StateId] {
        &self.input_states
    }

    /// The output states `Q_O`.
    pub fn output_states(&self) -> Vec<StateId> {
        (0..self.states.len() as StateId)
            .filter(|&q| self.states[q as usize].output.is_some())
            .collect()
    }

    /// Renders the transition diagram in Graphviz DOT format.
    ///
    /// Used to regenerate the paper's Figure 1 from our implementation:
    /// nodes are states (output states doubly circled), an edge `q → q'`
    /// labelled `o / σ` means `δ(q, o)` can move to `q'` emitting `σ`.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        writeln!(out, "digraph \"{}\" {{", self.name).unwrap();
        writeln!(out, "  rankdir=LR;").unwrap();
        for (i, s) in self.states.iter().enumerate() {
            let shape = if s.output.is_some() {
                "doublecircle"
            } else {
                "circle"
            };
            let style = if self.input_states.contains(&(i as StateId)) {
                ", style=bold"
            } else {
                ""
            };
            writeln!(out, "  q{i} [label=\"{}\", shape={shape}{style}];", s.name).unwrap();
        }
        for (q, rows) in self.transitions.iter().enumerate() {
            for (obs, t) in rows.iter().enumerate() {
                let obs_label = if obs as u8 == self.bound {
                    format!("≥{}", self.bound)
                } else {
                    obs.to_string()
                };
                for (q2, emission) in &t.choices {
                    // Skip pure self-loops that emit nothing: they are the
                    // default "stay" behavior and only clutter the figure.
                    if *q2 as usize == q && emission.is_none() && t.choices.len() == 1 {
                        continue;
                    }
                    writeln!(
                        out,
                        "  q{q} -> q{} [label=\"#{}={} / {}\"];",
                        q2,
                        self.alphabet.name(self.states[q].query),
                        obs_label,
                        self.alphabet.emission_name(*emission),
                    )
                    .unwrap();
                }
            }
        }
        writeln!(out, "}}").unwrap();
        out
    }
}

impl crate::Protocol for TableProtocol {
    type State = StateId;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        self.bound
    }

    fn initial_letter(&self) -> Letter {
        self.initial_letter
    }

    fn initial_state(&self, input: usize) -> StateId {
        self.input_states[input]
    }

    fn output(&self, q: &StateId) -> Option<u64> {
        self.states[*q as usize].output
    }
}

impl Fsm for TableProtocol {
    fn query(&self, q: &StateId) -> Letter {
        self.states[*q as usize].query
    }

    fn delta(&self, q: &StateId, observed: BoundedCount) -> Transitions<StateId> {
        self.transitions[*q as usize][observed.raw() as usize].clone()
    }
}

/// Builder for [`TableProtocol`].
///
/// # Example
///
/// ```
/// use stoneage_core::{Alphabet, Letter, TableProtocolBuilder, Transitions};
///
/// // A two-state "fire once" machine: emit `go` then sit in an output state.
/// let alphabet = Alphabet::new(["go"]);
/// let mut b = TableProtocolBuilder::new("fire-once", alphabet, 1, Letter(0));
/// let start = b.add_state("start", Letter(0));
/// let done = b.add_output_state("done", Letter(0), 1);
/// b.set_transition(start, 0, Transitions::det(done, Some(Letter(0))));
/// b.set_transition(start, 1, Transitions::det(done, Some(Letter(0))));
/// b.set_transition(done, 0, Transitions::det(done, None));
/// b.set_transition(done, 1, Transitions::det(done, None));
/// b.add_input_state(start);
/// let protocol = b.build().unwrap();
/// assert_eq!(protocol.state_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct TableProtocolBuilder {
    name: String,
    alphabet: Alphabet,
    bound: u8,
    initial_letter: Letter,
    states: Vec<StateInfo>,
    input_states: Vec<StateId>,
    transitions: Vec<Vec<Option<Transitions<StateId>>>>,
}

impl TableProtocolBuilder {
    /// Starts a protocol with the given alphabet, bounding parameter and
    /// initial letter.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn new(
        name: impl Into<String>,
        alphabet: Alphabet,
        bound: u8,
        initial_letter: Letter,
    ) -> Self {
        assert!(bound > 0, "bounding parameter must be positive");
        TableProtocolBuilder {
            name: name.into(),
            alphabet,
            bound,
            initial_letter,
            states: Vec::new(),
            input_states: Vec::new(),
            transitions: Vec::new(),
        }
    }

    /// Adds a non-output state with query letter `query`; returns its id.
    pub fn add_state(&mut self, name: impl Into<String>, query: Letter) -> StateId {
        self.push_state(name.into(), query, None)
    }

    /// Adds an output state carrying `output`; returns its id.
    pub fn add_output_state(
        &mut self,
        name: impl Into<String>,
        query: Letter,
        output: u64,
    ) -> StateId {
        self.push_state(name.into(), query, Some(output))
    }

    fn push_state(&mut self, name: String, query: Letter, output: Option<u64>) -> StateId {
        let id = self.states.len();
        assert!(id < StateId::MAX as usize, "too many states");
        self.states.push(StateInfo {
            name,
            query,
            output,
        });
        self.transitions.push(vec![None; self.bound as usize + 1]);
        id as StateId
    }

    /// Declares `q ∈ Q_I`; the `i`-th declared input state serves input
    /// symbol `i`.
    pub fn add_input_state(&mut self, q: StateId) {
        self.input_states.push(q);
    }

    /// Sets `δ(q, o)` for raw observation `o ∈ 0..=b`.
    pub fn set_transition(&mut self, q: StateId, observation: u8, t: Transitions<StateId>) {
        assert!(observation <= self.bound, "observation beyond ≥b symbol");
        self.transitions[q as usize][observation as usize] = Some(t);
    }

    /// Sets `δ(q, o)` to the same transition for every `o ∈ 0..=b`
    /// (observation-independent moves).
    pub fn set_transition_all(&mut self, q: StateId, t: Transitions<StateId>) {
        for o in 0..=self.bound {
            self.set_transition(q, o, t.clone());
        }
    }

    /// Validates and builds the protocol.
    pub fn build(self) -> Result<TableProtocol, ProtocolError> {
        if self.input_states.is_empty() {
            return Err(ProtocolError::NoInputStates);
        }
        let n = self.states.len();
        if !self.alphabet.contains(self.initial_letter) {
            return Err(ProtocolError::BadLetter(self.initial_letter));
        }
        for &q in &self.input_states {
            if q as usize >= n {
                return Err(ProtocolError::BadStateId(q));
            }
        }
        for s in &self.states {
            if !self.alphabet.contains(s.query) {
                return Err(ProtocolError::BadLetter(s.query));
            }
        }
        if self.transitions.len() != n {
            return Err(ProtocolError::MalformedTable);
        }
        let mut transitions = Vec::with_capacity(n);
        for (q, rows) in self.transitions.into_iter().enumerate() {
            if rows.len() != self.bound as usize + 1 {
                return Err(ProtocolError::MalformedTable);
            }
            let mut filled = Vec::with_capacity(rows.len());
            for (o, cell) in rows.into_iter().enumerate() {
                let t = cell.ok_or(ProtocolError::EmptyTransition {
                    state: q as StateId,
                    observation: o as u8,
                })?;
                if t.is_empty() {
                    return Err(ProtocolError::EmptyTransition {
                        state: q as StateId,
                        observation: o as u8,
                    });
                }
                for (q2, emission) in &t.choices {
                    if *q2 as usize >= n {
                        return Err(ProtocolError::BadStateId(*q2));
                    }
                    if let Some(l) = emission {
                        if !self.alphabet.contains(*l) {
                            return Err(ProtocolError::BadLetter(*l));
                        }
                    }
                }
                filled.push(t);
            }
            transitions.push(filled);
        }
        Ok(TableProtocol {
            name: self.name,
            alphabet: self.alphabet,
            bound: self.bound,
            initial_letter: self.initial_letter,
            states: self.states,
            input_states: self.input_states,
            transitions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Protocol as _;

    fn two_state() -> TableProtocolBuilder {
        let alphabet = Alphabet::new(["a", "b"]);
        let mut b = TableProtocolBuilder::new("two", alphabet, 1, Letter(0));
        let s0 = b.add_state("s0", Letter(0));
        let s1 = b.add_output_state("s1", Letter(1), 7);
        b.set_transition_all(s0, Transitions::det(s1, Some(Letter(1))));
        b.set_transition_all(s1, Transitions::det(s1, None));
        b
    }

    #[test]
    fn builds_and_implements_fsm() {
        let mut b = two_state();
        b.add_input_state(0);
        let p = b.build().unwrap();
        assert_eq!(p.state_count(), 2);
        assert_eq!(p.initial_state(0), 0);
        assert_eq!(p.output(&0), None);
        assert_eq!(p.output(&1), Some(7));
        assert_eq!(p.query(&0), Letter(0));
        let t = p.delta(&0, crate::fb(0, 1));
        assert_eq!(t.choices, vec![(1, Some(Letter(1)))]);
        assert_eq!(p.state_by_name("s1"), Some(1));
        assert_eq!(p.state_name(1), "s1");
        assert_eq!(p.output_states(), vec![1]);
    }

    #[test]
    fn missing_input_state_is_error() {
        let b = two_state();
        assert_eq!(b.build().unwrap_err(), ProtocolError::NoInputStates);
    }

    #[test]
    fn missing_transition_cell_is_error() {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("bad", alphabet, 2, Letter(0));
        let s0 = b.add_state("s0", Letter(0));
        b.add_input_state(s0);
        b.set_transition(s0, 0, Transitions::det(s0, None));
        // observations 1 and 2 left unset
        assert!(matches!(
            b.build().unwrap_err(),
            ProtocolError::EmptyTransition {
                state: 0,
                observation: 1
            }
        ));
    }

    #[test]
    fn bad_target_state_is_error() {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("bad", alphabet, 1, Letter(0));
        let s0 = b.add_state("s0", Letter(0));
        b.add_input_state(s0);
        b.set_transition_all(s0, Transitions::det(9, None));
        assert_eq!(b.build().unwrap_err(), ProtocolError::BadStateId(9));
    }

    #[test]
    fn bad_emission_letter_is_error() {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("bad", alphabet, 1, Letter(0));
        let s0 = b.add_state("s0", Letter(0));
        b.add_input_state(s0);
        b.set_transition_all(s0, Transitions::det(s0, Some(Letter(5))));
        assert_eq!(b.build().unwrap_err(), ProtocolError::BadLetter(Letter(5)));
    }

    #[test]
    fn bad_initial_letter_is_error() {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("bad", alphabet, 1, Letter(3));
        let s0 = b.add_state("s0", Letter(0));
        b.add_input_state(s0);
        b.set_transition_all(s0, Transitions::det(s0, None));
        assert_eq!(b.build().unwrap_err(), ProtocolError::BadLetter(Letter(3)));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn observation_beyond_bound_panics() {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("bad", alphabet, 1, Letter(0));
        let s0 = b.add_state("s0", Letter(0));
        b.set_transition(s0, 2, Transitions::det(s0, None));
    }

    #[test]
    fn dot_export_mentions_all_states() {
        let mut b = two_state();
        b.add_input_state(0);
        let p = b.build().unwrap();
        let dot = p.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("s0"));
        assert!(dot.contains("s1"));
        assert!(dot.contains("doublecircle"));
    }
}
