//! The **networked finite state machines (nFSM)** model of
//! *Stone Age Distributed Computing* (Emek, Smula, Wattenhofer).
//!
//! A protocol is the paper's 8-tuple `Π = ⟨Q, Q_I, Q_O, Σ, σ₀, b, λ, δ⟩`:
//! a constant-size randomized FSM run identically by every node of an
//! arbitrary graph. Nodes broadcast single letters of the constant alphabet
//! `Σ`; each port keeps only the *last* letter received; a node observes the
//! count of its current query letter truncated by the *one-two-many*
//! bounding parameter `b` (values ≥ b are indistinguishable — the symbol
//! `≥b` of the paper's `B = {0, …, b-1, ≥b}`).
//!
//! This crate provides:
//!
//! * the model vocabulary — [`Letter`], [`Alphabet`], [`BoundedCount`]
//!   (the set `B` together with `f_b`), [`Transitions`];
//! * the protocol abstractions — the representation-independent
//!   [`Protocol`] base (states, alphabet, inputs, outputs) with its two
//!   transition flavors [`Fsm`] (single-letter queries, the formal model
//!   of Section 2) and [`MultiFsm`] (the multiple-letter-query
//!   convenience layer of Section 3.2);
//! * a concrete table-driven representation, [`TableProtocol`], with
//!   well-formedness validation and Graphviz export (used to regenerate the
//!   paper's Figure 1);
//! * the paper's two black-box compilers as *protocol combinators*:
//!   [`Synchronized`] (the synchronizer of Theorem 3.1, enabling execution
//!   in fully asynchronous environments) and [`SingleLetter`] (the
//!   multiple-letter-query elimination of Theorem 3.4).
//!
//! Execution engines live in the `stoneage-sim` crate; concrete protocols
//! (MIS, tree coloring, …) in `stoneage-protocols`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bounded;
mod fsm;
mod letter;

pub mod multiq;
pub mod sync;
pub mod table;

pub use bounded::{fb, BoundedCount};
pub use fsm::{AsMulti, Fsm, MultiFsm, ObsVec, Protocol, Transitions};
pub use letter::{Alphabet, Letter};
pub use multiq::SingleLetter;
pub use sync::Synchronized;
pub use table::{ProtocolError, TableProtocol, TableProtocolBuilder};
