//! Elimination of **multiple-letter queries** (Theorem 3.4): compiling a
//! [`MultiFsm`] down to a single-letter-query [`Fsm`] by subdividing each
//! round into `|Σ|` subrounds, one per letter.
//!
//! During the subrounds the node accumulates `f_b(#σ)` for each `σ ∈ Σ` into
//! its state; at the last subround it applies the wrapped protocol's
//! transition on the completed observation vector and performs the wrapped
//! protocol's emission. All earlier subrounds transmit `ε`, so ports are
//! only overwritten at (simulated) round boundaries — exactly the paper's
//! timing.
//!
//! The compiled protocol advances its subround index *unconditionally*, so
//! under a lockstep synchronous execution (or under the exact-count
//! semantics provided by [`crate::Synchronized`] — see that module's
//! documentation) all nodes stay on the same subround schedule and every
//! gather observes the counts as of the previous simulated round.

use crate::{Alphabet, BoundedCount, Fsm, Letter, MultiFsm, ObsVec, Transitions};

/// A state of the compiled protocol: the wrapped state plus the truncated
/// counts gathered so far this round (`counts.len()` is the subround
/// index, i.e. the next letter to query).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GatherState<S> {
    /// The wrapped protocol's state for the round being simulated.
    pub inner: S,
    /// Truncated counts for letters `0..counts.len()`.
    pub counts: Vec<u8>,
}

/// The multiple-letter-query eliminator of Theorem 3.4, as an [`Fsm`]
/// combinator over any [`MultiFsm`].
///
/// State count multiplies by at most `Σ_{k<|Σ|} (b+1)^k` (constant in the
/// network); round count multiplies by exactly `|Σ|`.
#[derive(Clone, Debug)]
pub struct SingleLetter<P: MultiFsm> {
    inner: P,
}

impl<P: MultiFsm> SingleLetter<P> {
    /// Compiles `inner` down to single-letter queries.
    pub fn new(inner: P) -> Self {
        SingleLetter { inner }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The subround multiplier: each simulated round takes exactly `|Σ|`
    /// compiled rounds.
    pub fn rounds_per_round(&self) -> usize {
        self.inner.alphabet().len()
    }
}

impl<P: MultiFsm> crate::Protocol for SingleLetter<P> {
    type State = GatherState<P::State>;

    fn alphabet(&self) -> &Alphabet {
        self.inner.alphabet()
    }

    fn bound(&self) -> u8 {
        self.inner.bound()
    }

    fn initial_letter(&self) -> Letter {
        self.inner.initial_letter()
    }

    fn initial_state(&self, input: usize) -> Self::State {
        GatherState {
            inner: self.inner.initial_state(input),
            counts: Vec::new(),
        }
    }

    fn output(&self, q: &Self::State) -> Option<u64> {
        self.inner.output(&q.inner)
    }
}

impl<P: MultiFsm> Fsm for SingleLetter<P> {
    fn query(&self, q: &Self::State) -> Letter {
        debug_assert!(q.counts.len() < self.inner.alphabet().len());
        Letter(q.counts.len() as u16)
    }

    fn delta(&self, q: &Self::State, observed: BoundedCount) -> Transitions<Self::State> {
        let sigma = self.inner.alphabet().len();
        let mut counts = q.counts.clone();
        counts.push(observed.raw());
        if counts.len() < sigma {
            // More letters to gather; stay silent.
            return Transitions::det(
                GatherState {
                    inner: q.inner.clone(),
                    counts,
                },
                None,
            );
        }
        // Observation vector complete: simulate the wrapped round.
        let b = self.inner.bound();
        let obs = ObsVec::new(
            counts
                .iter()
                .map(|&raw| BoundedCount::from_raw(raw, b))
                .collect(),
        );
        self.inner
            .delta(&q.inner, &obs)
            .map_states(|inner| GatherState {
                inner,
                counts: Vec::new(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fb;
    use crate::Protocol as _;

    /// A toy multi-letter protocol over Σ = {x, y}: from `start`, move to
    /// output 10 + #x + 10·#y (b = 2) and emit `y` iff #x > 0.
    #[derive(Clone, Debug)]
    struct Toy {
        alphabet: Alphabet,
    }

    impl Toy {
        fn new() -> Self {
            Toy {
                alphabet: Alphabet::new(["x", "y"]),
            }
        }
    }

    #[derive(Clone, PartialEq, Eq, Debug)]
    enum ToyState {
        Start,
        Done(u64),
    }

    impl crate::Protocol for Toy {
        type State = ToyState;

        fn alphabet(&self) -> &Alphabet {
            &self.alphabet
        }

        fn bound(&self) -> u8 {
            2
        }

        fn initial_letter(&self) -> Letter {
            Letter(0)
        }

        fn initial_state(&self, _input: usize) -> ToyState {
            ToyState::Start
        }

        fn output(&self, q: &ToyState) -> Option<u64> {
            match q {
                ToyState::Start => None,
                ToyState::Done(v) => Some(*v),
            }
        }
    }

    impl MultiFsm for Toy {
        fn delta(&self, q: &ToyState, obs: &ObsVec) -> Transitions<ToyState> {
            match q {
                ToyState::Start => {
                    let x = obs.get(Letter(0)).raw() as u64;
                    let y = obs.get(Letter(1)).raw() as u64;
                    let emit = if x > 0 { Some(Letter(1)) } else { None };
                    Transitions::det(ToyState::Done(10 + x + 10 * y), emit)
                }
                done => Transitions::det(done.clone(), None),
            }
        }
    }

    #[test]
    fn gather_walks_all_letters_then_applies_inner() {
        let p = SingleLetter::new(Toy::new());
        let q0 = p.initial_state(0);
        assert_eq!(q0.counts.len(), 0);
        assert_eq!(p.query(&q0), Letter(0));
        assert_eq!(p.output(&q0), None);

        // Subround 1: observe #x = 1 (truncated at b = 2).
        let t = p.delta(&q0, fb(1, 2));
        assert_eq!(t.choices.len(), 1);
        let (q1, e1) = &t.choices[0];
        assert_eq!(e1, &None);
        assert_eq!(q1.counts, vec![1]);
        assert_eq!(p.query(q1), Letter(1));

        // Subround 2: observe #y = 5 → truncated to 2; round completes.
        let t = p.delta(q1, fb(5, 2));
        let (q2, e2) = &t.choices[0];
        assert_eq!(e2, &Some(Letter(1))); // inner emitted y because #x > 0
        assert_eq!(q2.inner, ToyState::Done(10 + 1 + 20));
        assert_eq!(q2.counts.len(), 0);
        assert_eq!(p.output(q2), Some(31));
    }

    #[test]
    fn rounds_multiplier_is_alphabet_size() {
        let p = SingleLetter::new(Toy::new());
        assert_eq!(p.rounds_per_round(), 2);
    }

    #[test]
    fn alphabet_and_bound_pass_through() {
        let p = SingleLetter::new(Toy::new());
        assert_eq!(p.alphabet().len(), 2);
        assert_eq!(p.bound(), 2);
        assert_eq!(p.initial_letter(), Letter(0));
    }

    #[test]
    fn zero_observations_emit_epsilon() {
        let p = SingleLetter::new(Toy::new());
        let q0 = p.initial_state(0);
        let t = p.delta(&q0, fb(0, 2));
        let (q1, _) = &t.choices[0];
        let t = p.delta(q1, fb(0, 2));
        let (q2, e) = &t.choices[0];
        assert_eq!(e, &None);
        assert_eq!(p.output(q2), Some(10));
    }
}
