//! The **synchronizer** of Theorem 3.1: a black-box compiler turning a
//! protocol `Π` designed for a *locally synchronous* environment into a
//! protocol `Π̂` that is correct in the fully asynchronous environment of
//! Section 2, at a constant multiplicative run-time overhead.
//!
//! # The construction (Section 3.1 of the paper)
//!
//! Round `t` of `Π` is simulated by a *simulation phase* of `Π̂` consisting
//! of a **pausing feature** followed by a **simulating feature**. The
//! compiled alphabet is
//!
//! ```text
//! Σ̂ = (Σ ∪ {ε}) × (Σ ∪ {ε}) × {0, 1, 2}
//! ```
//!
//! and the message `M_v(t) = (σ, σ′, j)` transmitted at the end of `v`'s
//! phase `t` encodes `v`'s **retained letter** after round `t-1` (`σ`),
//! after round `t` (`σ′`), and the *trit* `j = t mod 3`. The retained
//! letter is the last non-`ε` letter transmitted so far (starting at
//! `σ₀`): this is what synchronization property (S2) makes ports store —
//! an `ε` emission leaves a port untouched — so it, and not the literal
//! per-round emission, is what the simulated transition must count. (A
//! protocol like the paper's MIS machine transmits only on state changes;
//! carrying literal emissions would make silent neighbors invisible.)
//!
//! * The **pausing feature** holds `v` until no port contains a *dirty*
//!   letter (trit `t - 2 mod 3`), which establishes synchronization
//!   property (S1): neighbors are never more than one round apart
//!   (Lemma 3.2).
//! * The **simulating feature** computes `f_b` of the number of neighbors
//!   that transmitted the query letter `σ = λ(q)` at round `t-1`. Such a
//!   transmission is visible either as the *second* component of a
//!   neighbor's `M_u(t-1)` (letter set `Γ_{t-1}`) or as the *first*
//!   component of `M_u(t)` (letter set `Γ_t`), depending on how far the
//!   neighbor has progressed. The feature scans `φ₁ ← f_b(Σ_{Γ_{t-1}})`,
//!   `φ₂ ← f_b(Σ_{Γ_t})`, then re-scans `φ₃ ← f_b(Σ_{Γ_{t-1}})` and
//!   restarts unless `φ₁ = φ₃` (the `Γ_{t-1}` count can only decrease, so
//!   at most `b + 1` attempts occur). On success it applies
//!   `δ(q, min(φ₁ + φ₂, b))` — exact by the homomorphism
//!   `f_b(x + y) = min(f_b(x) + f_b(y), b)`.
//!
//! Because every neighbor's `σ`-at-round-`t-1` information appears
//! consistently in *both* `M_u(t-1)` and `M_u(t)`, the simulated protocol
//! observes **exactly** the counts it would observe in a lockstep
//! synchronous execution — the guarantee the [`crate::SingleLetter`]
//! construction (Theorem 3.4) relies on when the two compilers are stacked
//! as `Synchronized<SingleLetter<P>>`.

use crate::{Alphabet, BoundedCount, Fsm, Letter, Transitions};

/// Which of the three scans of the simulating feature is in progress.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Scan {
    /// First scan of `Γ_{t-1}` (computing `φ₁`).
    Phi1,
    /// Scan of `Γ_t` (computing `φ₂`).
    Phi2,
    /// Re-scan of `Γ_{t-1}` (computing `φ₃`, compared against `φ₁`).
    Phi3,
}

/// A state of the compiled protocol `Π̂`: the paper's pausing feature
/// `P_q × {j}` or simulating feature `S_q × {j}`, enriched with the
/// node's current retained letter (needed to assemble `M_v(t)`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SyncState<S> {
    /// Pausing feature: waiting until no dirty letter remains in any port.
    Pause {
        /// The simulated protocol's state `q` for the current round.
        inner: S,
        /// `v`'s retained letter after the previous simulated round.
        retained: Option<Letter>,
        /// `t mod 3` for the round being simulated.
        trit: u8,
        /// Index of the next dirty letter to check, in `0..(|Σ|+1)²`.
        check: u16,
    },
    /// Simulating feature: the three-scan count of the query letter.
    Sim {
        /// The simulated protocol's state `q` for the current round.
        inner: S,
        /// `v`'s retained letter after the previous simulated round.
        retained: Option<Letter>,
        /// `t mod 3` for the round being simulated.
        trit: u8,
        /// Which scan is running.
        scan: Scan,
        /// Index of the next `Σ ∪ {ε}` component to query, in `0..=|Σ|`.
        idx: u16,
        /// Running saturated sum of the current scan.
        acc: u8,
        /// Result of the `φ₁` scan (valid from `Phi2` on).
        phi1: u8,
        /// Result of the `φ₂` scan (valid during `Phi3`).
        phi2: u8,
    },
}

impl<S> SyncState<S> {
    /// The simulated protocol's state embedded in this compiled state.
    pub fn inner(&self) -> &S {
        match self {
            SyncState::Pause { inner, .. } | SyncState::Sim { inner, .. } => inner,
        }
    }

    /// The trit `t mod 3` of the round currently being simulated.
    pub fn trit(&self) -> u8 {
        match self {
            SyncState::Pause { trit, .. } | SyncState::Sim { trit, .. } => *trit,
        }
    }

    /// Whether the node is in the pausing feature.
    pub fn is_pausing(&self) -> bool {
        matches!(self, SyncState::Pause { .. })
    }
}

/// The synchronizer `Π ↦ Π̂` of Theorem 3.1, as an [`Fsm`] combinator.
///
/// The wrapped protocol must be a *single-letter-query* protocol designed
/// for a locally synchronous environment (compile multi-letter protocols
/// through [`crate::SingleLetter`] first). The result is correct under the
/// fully asynchronous semantics implemented by `stoneage-sim`'s
/// asynchronous executor, for every adversarial policy.
#[derive(Clone, Debug)]
pub struct Synchronized<P: Fsm> {
    inner: P,
    alphabet: Alphabet,
}

impl<P: Fsm> Synchronized<P> {
    /// Compiles `inner` through the synchronizer.
    pub fn new(inner: P) -> Self {
        let s = inner.alphabet().len();
        let mut names = Vec::with_capacity(3 * (s + 1) * (s + 1));
        for p in 0..=s {
            for c in 0..=s {
                for j in 0..3u8 {
                    let pn = if p == s {
                        "ε".to_owned()
                    } else {
                        inner.alphabet().name(Letter(p as u16)).to_owned()
                    };
                    let cn = if c == s {
                        "ε".to_owned()
                    } else {
                        inner.alphabet().name(Letter(c as u16)).to_owned()
                    };
                    names.push(format!("({pn},{cn},{j})"));
                }
            }
        }
        Synchronized {
            alphabet: Alphabet::new(names),
            inner,
        }
    }

    /// The wrapped protocol.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    fn sigma(&self) -> usize {
        self.inner.alphabet().len()
    }

    /// Index of an emission in `Σ ∪ {ε}` (`ε` gets index `|Σ|`).
    fn emit_idx(&self, e: Option<Letter>) -> usize {
        e.map_or(self.sigma(), Letter::index)
    }

    /// Encodes the compiled letter `(p, c, j)` with `p, c ∈ 0..=|Σ|`
    /// (index `|Σ|` standing for `ε`) and `j ∈ {0, 1, 2}`.
    pub fn encode_indices(&self, p: usize, c: usize, j: u8) -> Letter {
        let s1 = self.sigma() + 1;
        debug_assert!(p < s1 && c < s1 && j < 3);
        Letter(((p * s1 + c) * 3 + j as usize) as u16)
    }

    /// Encodes the message `M_v(t) = (prev, cur, t mod 3)`.
    pub fn encode_message(&self, prev: Option<Letter>, cur: Option<Letter>, trit: u8) -> Letter {
        self.encode_indices(self.emit_idx(prev), self.emit_idx(cur), trit)
    }

    /// Decodes a compiled letter back into `(prev, cur, trit)` where `None`
    /// stands for `ε`.
    pub fn decode_message(&self, letter: Letter) -> (Option<Letter>, Option<Letter>, u8) {
        let s1 = (self.sigma() + 1) as u16;
        let j = (letter.0 % 3) as u8;
        let pc = letter.0 / 3;
        let c = pc % s1;
        let p = pc / s1;
        let to_emit = |x: u16| {
            if x as usize == self.sigma() {
                None
            } else {
                Some(Letter(x))
            }
        };
        (to_emit(p), to_emit(c), j)
    }

    /// `|Σ̂| = 3(|Σ| + 1)²` — the paper's `O(|Σ|²)` accounting.
    pub fn alphabet_size(&self) -> usize {
        3 * (self.sigma() + 1) * (self.sigma() + 1)
    }

    /// An upper bound on the number of *reachable* compiled states per
    /// inner state: `3` trits × `(|Σ|+1)` previous emissions ×
    /// `((|Σ|+1)² + 3(|Σ|+1)(b+1)²)` feature positions — constant in the
    /// network, polynomial in `|Σ|` and `b`, matching the paper's
    /// `|Q̂| = O(|Q|·(|Σ|² + |Σ|·b))` up to the bookkeeping factors.
    pub fn states_per_inner_state(&self) -> usize {
        let s1 = self.sigma() + 1;
        let b1 = self.inner.bound() as usize + 1;
        3 * s1 * (s1 * s1 + 3 * s1 * b1 * b1)
    }

    fn pause_checks(&self) -> u16 {
        let s1 = (self.sigma() + 1) as u16;
        s1 * s1
    }

    fn start_sim(
        &self,
        inner: P::State,
        retained: Option<Letter>,
        trit: u8,
    ) -> SyncState<P::State> {
        SyncState::Sim {
            inner,
            retained,
            trit,
            scan: Scan::Phi1,
            idx: 0,
            acc: 0,
            phi1: 0,
            phi2: 0,
        }
    }
}

impl<P: Fsm> crate::Protocol for Synchronized<P> {
    type State = SyncState<P::State>;

    fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    fn bound(&self) -> u8 {
        self.inner.bound()
    }

    fn initial_letter(&self) -> Letter {
        // M_v(0) = (ε, σ₀, 0): the virtual round 0 "transmitted" σ₀.
        self.encode_message(None, Some(self.inner.initial_letter()), 0)
    }

    fn initial_state(&self, input: usize) -> Self::State {
        SyncState::Pause {
            inner: self.inner.initial_state(input),
            retained: Some(self.inner.initial_letter()),
            trit: 1,
            check: 0,
        }
    }

    fn output(&self, q: &Self::State) -> Option<u64> {
        self.inner.output(q.inner())
    }
}

impl<P: Fsm> Fsm for Synchronized<P> {
    fn query(&self, q: &Self::State) -> Letter {
        match q {
            SyncState::Pause { trit, check, .. } => {
                // Dirty letters carry trit t-2 ≡ t+1 (mod 3).
                let s1 = (self.sigma() + 1) as u16;
                let p = (check / s1) as usize;
                let c = (check % s1) as usize;
                self.encode_indices(p, c, (trit + 1) % 3)
            }
            SyncState::Sim {
                inner,
                trit,
                scan,
                idx,
                ..
            } => {
                let qi = self.inner.query(inner).index();
                match scan {
                    // Γ_{t-1}: σ appears as the *second* component, trit t-1.
                    Scan::Phi1 | Scan::Phi3 => {
                        self.encode_indices(*idx as usize, qi, (trit + 2) % 3)
                    }
                    // Γ_t: σ appears as the *first* component, trit t.
                    Scan::Phi2 => self.encode_indices(qi, *idx as usize, *trit),
                }
            }
        }
    }

    fn delta(&self, q: &Self::State, observed: BoundedCount) -> Transitions<Self::State> {
        let b = self.inner.bound();
        match q {
            SyncState::Pause {
                inner,
                retained,
                trit,
                check,
            } => {
                if !observed.is_zero() {
                    // A dirty letter is present: stay put, transmit ε.
                    return Transitions::det(q.clone(), None);
                }
                let next_check = check + 1;
                if next_check < self.pause_checks() {
                    Transitions::det(
                        SyncState::Pause {
                            inner: inner.clone(),
                            retained: *retained,
                            trit: *trit,
                            check: next_check,
                        },
                        None,
                    )
                } else {
                    Transitions::det(self.start_sim(inner.clone(), *retained, *trit), None)
                }
            }
            SyncState::Sim {
                inner,
                retained,
                trit,
                scan,
                idx,
                acc,
                phi1,
                phi2,
            } => {
                let new_acc = (acc + observed.raw()).min(b);
                let last = *idx as usize == self.sigma();
                if !last {
                    return Transitions::det(
                        SyncState::Sim {
                            inner: inner.clone(),
                            retained: *retained,
                            trit: *trit,
                            scan: *scan,
                            idx: idx + 1,
                            acc: new_acc,
                            phi1: *phi1,
                            phi2: *phi2,
                        },
                        None,
                    );
                }
                match scan {
                    Scan::Phi1 => Transitions::det(
                        SyncState::Sim {
                            inner: inner.clone(),
                            retained: *retained,
                            trit: *trit,
                            scan: Scan::Phi2,
                            idx: 0,
                            acc: 0,
                            phi1: new_acc,
                            phi2: 0,
                        },
                        None,
                    ),
                    Scan::Phi2 => Transitions::det(
                        SyncState::Sim {
                            inner: inner.clone(),
                            retained: *retained,
                            trit: *trit,
                            scan: Scan::Phi3,
                            idx: 0,
                            acc: 0,
                            phi1: *phi1,
                            phi2: new_acc,
                        },
                        None,
                    ),
                    Scan::Phi3 => {
                        if new_acc != *phi1 {
                            // The Γ_{t-1} count moved underneath us: restart
                            // the simulating feature from scratch.
                            return Transitions::det(
                                self.start_sim(inner.clone(), *retained, *trit),
                                None,
                            );
                        }
                        // Stable: simulate δ(q, f_b(φ₁ + φ₂)) and transmit
                        // M_v(t) = (retained after t-1, retained after t,
                        // t mod 3) — an ε emission leaves the retained
                        // letter unchanged, exactly like a port under (S2).
                        let count = BoundedCount::from_raw((phi1 + phi2).min(b), b);
                        let inner_transitions = self.inner.delta(inner, count);
                        let next_trit = (trit + 1) % 3;
                        let choices = inner_transitions
                            .choices
                            .into_iter()
                            .map(|(q_next, emission)| {
                                let new_retained = emission.or(*retained);
                                let message = self.encode_message(*retained, new_retained, *trit);
                                (
                                    SyncState::Pause {
                                        inner: q_next,
                                        retained: new_retained,
                                        trit: next_trit,
                                        check: 0,
                                    },
                                    Some(message),
                                )
                            })
                            .collect();
                        Transitions::uniform(choices)
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableProtocolBuilder;
    use crate::Protocol as _;
    use crate::{fb, TableProtocol};

    /// A toy 1-letter protocol: emit `a` once, then forever count `a`s and
    /// stay in a sink recording whether any neighbor beeped.
    fn beep_once() -> TableProtocol {
        let alphabet = Alphabet::new(["a"]);
        let mut b = TableProtocolBuilder::new("beep-once", alphabet, 1, Letter(0));
        let start = b.add_state("start", Letter(0));
        let wait = b.add_state("wait", Letter(0));
        let heard = b.add_output_state("heard", Letter(0), 1);
        b.add_input_state(start);
        b.set_transition_all(start, Transitions::det(wait, Some(Letter(0))));
        b.set_transition(wait, 0, Transitions::det(wait, None));
        b.set_transition(wait, 1, Transitions::det(heard, None));
        b.set_transition_all(heard, Transitions::det(heard, None));
        b.build().unwrap()
    }

    #[test]
    fn alphabet_size_is_3_sigma_plus_1_squared() {
        let p = Synchronized::new(beep_once());
        assert_eq!(p.alphabet_size(), 3 * 2 * 2);
        assert_eq!(p.alphabet().len(), 12);
    }

    #[test]
    fn message_encoding_round_trips() {
        let p = Synchronized::new(beep_once());
        for prev in [None, Some(Letter(0))] {
            for cur in [None, Some(Letter(0))] {
                for trit in 0..3u8 {
                    let l = p.encode_message(prev, cur, trit);
                    assert!(p.alphabet().contains(l));
                    assert_eq!(p.decode_message(l), (prev, cur, trit));
                }
            }
        }
    }

    #[test]
    fn initial_letter_is_virtual_round_zero() {
        let p = Synchronized::new(beep_once());
        let (prev, cur, trit) = p.decode_message(p.initial_letter());
        assert_eq!(prev, None);
        assert_eq!(cur, Some(Letter(0)));
        assert_eq!(trit, 0);
    }

    #[test]
    fn initial_state_starts_phase_one_pausing() {
        let p = Synchronized::new(beep_once());
        match p.initial_state(0) {
            SyncState::Pause {
                inner,
                retained,
                trit,
                check,
            } => {
                assert_eq!(inner, 0);
                assert_eq!(retained, Some(Letter(0)));
                assert_eq!(trit, 1);
                assert_eq!(check, 0);
            }
            other => panic!("expected Pause, got {other:?}"),
        }
    }

    #[test]
    fn pause_stays_on_dirty_letter() {
        let p = Synchronized::new(beep_once());
        let q = p.initial_state(0);
        // Observing a dirty letter (count ≥ 1) keeps the node in place.
        let t = p.delta(&q, fb(1, 1));
        assert_eq!(t.choices.len(), 1);
        assert_eq!(t.choices[0].0, q);
        assert_eq!(t.choices[0].1, None);
    }

    #[test]
    fn pause_advances_through_all_checks_then_sims() {
        let p = Synchronized::new(beep_once());
        let mut q = p.initial_state(0);
        // (|Σ|+1)² = 4 checks, all observing zero.
        for _ in 0..4 {
            assert!(q.is_pausing());
            let t = p.delta(&q, fb(0, 1));
            q = t.choices[0].0.clone();
        }
        assert!(!q.is_pausing());
        match &q {
            SyncState::Sim { scan, idx, .. } => {
                assert_eq!(*scan, Scan::Phi1);
                assert_eq!(*idx, 0);
            }
            other => panic!("expected Sim, got {other:?}"),
        }
    }

    #[test]
    fn pause_query_letters_are_dirty_trit() {
        let p = Synchronized::new(beep_once());
        let q = p.initial_state(0);
        // Phase trit 1 ⇒ dirty trit 2.
        let (_, _, trit) = p.decode_message(p.query(&q));
        assert_eq!(trit, 2);
    }

    #[test]
    fn sim_completes_and_emits_compiled_message() {
        let p = Synchronized::new(beep_once());
        let mut q = p.initial_state(0);
        // Walk pause (4 checks) + Φ₁ (2) + Φ₂ (2) + Φ₃ (2) with all-zero
        // observations: the inner `start` state then transitions to `wait`
        // emitting letter a; the compiled emission is (σ₀, a, 1).
        let mut emitted = None;
        for _ in 0..10 {
            let t = p.delta(&q, fb(0, 1));
            assert_eq!(t.choices.len(), 1);
            emitted = t.choices[0].1;
            q = t.choices[0].0.clone();
            if emitted.is_some() {
                break;
            }
        }
        let msg = emitted.expect("phase should complete in 10 steps");
        let (prev, cur, trit) = p.decode_message(msg);
        assert_eq!(prev, Some(Letter(0))); // σ₀ from virtual round 0
        assert_eq!(cur, Some(Letter(0))); // `start` emits a
        assert_eq!(trit, 1);
        // And the node is now pausing for round 2 with inner = wait (1).
        match &q {
            SyncState::Pause {
                inner,
                retained,
                trit,
                check,
            } => {
                assert_eq!(*inner, 1);
                assert_eq!(*retained, Some(Letter(0)));
                assert_eq!(*trit, 2);
                assert_eq!(*check, 0);
            }
            other => panic!("expected Pause, got {other:?}"),
        }
    }

    #[test]
    fn phi3_mismatch_restarts_the_scan() {
        let p = Synchronized::new(beep_once());
        // Construct a Sim state at the last step of Φ₃ with phi1 = 1 and a
        // current observation that makes φ₃ = 0 ≠ φ₁.
        let q = SyncState::Sim {
            inner: 0u16,
            retained: Some(Letter(0)),
            trit: 1,
            scan: Scan::Phi3,
            idx: 1, // last index (|Σ| = 1)
            acc: 0,
            phi1: 1,
            phi2: 0,
        };
        let t = p.delta(&q, fb(0, 1));
        match &t.choices[0].0 {
            SyncState::Sim { scan, idx, acc, .. } => {
                assert_eq!(*scan, Scan::Phi1);
                assert_eq!(*idx, 0);
                assert_eq!(*acc, 0);
            }
            other => panic!("expected restarted Sim, got {other:?}"),
        }
        assert_eq!(t.choices[0].1, None);
    }

    #[test]
    fn output_tracks_inner_state() {
        let p = Synchronized::new(beep_once());
        let q = p.initial_state(0);
        assert_eq!(p.output(&q), None);
        let done = SyncState::Pause {
            inner: 2u16, // `heard`, output 1
            retained: None,
            trit: 0,
            check: 0,
        };
        assert_eq!(p.output(&done), Some(1));
    }

    #[test]
    fn accounting_is_constant_in_the_network() {
        let p = Synchronized::new(beep_once());
        // |Q̂| per inner state depends only on |Σ| and b.
        assert_eq!(p.states_per_inner_state(), 3 * 2 * (2 * 2 + 3 * 2 * 2 * 2));
    }
}
