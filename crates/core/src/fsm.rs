//! The protocol abstractions: [`Fsm`] (the formal single-letter-query model
//! of Section 2) and [`MultiFsm`] (the multiple-letter-query layer of
//! Section 3.2).

use crate::{Alphabet, BoundedCount, Letter};

/// The nondeterministic choice set `δ(q, ·) ⊆ Q × (Σ ∪ {ε})` from which the
/// next `(state, emission)` pair is drawn **uniformly at random**
/// (emission `None` is the empty symbol `ε` — no transmission).
///
/// A well-formed protocol never returns an empty choice set (the node would
/// have no successor configuration).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transitions<S> {
    /// The candidate `(next state, emission)` pairs.
    pub choices: Vec<(S, Option<Letter>)>,
}

impl<S> Transitions<S> {
    /// A deterministic transition: a single choice.
    pub fn det(state: S, emission: Option<Letter>) -> Self {
        Transitions {
            choices: vec![(state, emission)],
        }
    }

    /// A uniform choice among the given pairs.
    ///
    /// # Panics
    /// Panics if `choices` is empty.
    pub fn uniform(choices: Vec<(S, Option<Letter>)>) -> Self {
        assert!(!choices.is_empty(), "δ must offer at least one successor");
        Transitions { choices }
    }

    /// Number of candidate pairs.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Whether the choice set is empty (ill-formed).
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Picks one pair uniformly at random using the supplied RNG.
    ///
    /// # Panics
    /// Panics if the choice set is empty.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> &(S, Option<Letter>) {
        assert!(!self.choices.is_empty(), "empty transition set");
        if self.choices.len() == 1 {
            &self.choices[0]
        } else {
            &self.choices[rng.gen_range(0..self.choices.len())]
        }
    }

    /// Maps the state type, preserving emissions and choice order.
    pub fn map_states<T, F: FnMut(S) -> T>(self, mut f: F) -> Transitions<T> {
        Transitions {
            choices: self.choices.into_iter().map(|(s, e)| (f(s), e)).collect(),
        }
    }
}

/// The **representation-independent face** every protocol flavor shares:
/// the static components of the paper's 8-tuple
/// `Π = ⟨Q, Q_I, Q_O, Σ, σ₀, b, λ, δ⟩` that an execution environment
/// needs *before* it knows how transitions are queried.
///
/// [`Fsm`] (single-letter queries, Section 2), [`MultiFsm`]
/// (multiple-letter queries, Section 3.2), and the simulator's scoped
/// port-select extension are all subtraits adding only their flavor of
/// `δ`; everything generic over "a protocol" — input-state construction,
/// output decoding, alphabet sizing, the unified `Simulation` builder and
/// its `Outcome` — bounds on this trait alone.
pub trait Protocol {
    /// The state set `Q`. `Clone + Eq` so engines can store and compare
    /// per-node states; `Debug` for traces.
    type State: Clone + Eq + std::fmt::Debug;

    /// The communication alphabet `Σ`.
    fn alphabet(&self) -> &Alphabet;

    /// The bounding parameter `b ∈ Z>0`.
    fn bound(&self) -> u8;

    /// The initial letter `σ₀` stored in every port before any delivery.
    fn initial_letter(&self) -> Letter;

    /// The input state for input symbol `input` (an index into `Q_I`).
    /// Problems without node inputs use `input = 0` everywhere.
    fn initial_state(&self, input: usize) -> Self::State;

    /// `Some(output)` iff `q ∈ Q_O`; the global execution is in an *output
    /// configuration* when this is `Some` at every node.
    fn output(&self, q: &Self::State) -> Option<u64>;

    /// The state a node is reborn into when a fault-injection layer
    /// restarts it after a crash. The paper's nFSMs are uniform and
    /// anonymous, so a restarted node is indistinguishable from a fresh
    /// one and the default simply re-enters [`Self::initial_state`];
    /// protocols that model warm restarts
    /// can override it.
    fn restart_state(&self, input: usize) -> Self::State {
        self.initial_state(input)
    }
}

/// A protocol in the formal nFSM model of Section 2: every state queries a
/// **single** letter `λ(q)` and the transition depends only on
/// `f_b(#λ(q))`.
///
/// Model requirement (M2): all nodes run the *same* protocol — an `Fsm`
/// value is shared (by reference) across all nodes of an execution.
/// Requirement (M4) — constant size independent of the network — is a
/// design obligation on implementors: `State`, the alphabet and `b` must
/// not depend on `n` or on node degrees.
pub trait Fsm: Protocol {
    /// The query letter `λ(q)`.
    fn query(&self, q: &Self::State) -> Letter;

    /// The transition function `δ(q, f_b(#λ(q)))`.
    fn delta(&self, q: &Self::State, observed: BoundedCount) -> Transitions<Self::State>;
}

/// The observation available under **multiple-letter queries**
/// (Section 3.2): the full vector `⟨f_b(#σ)⟩_{σ∈Σ}`, indexed by letter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObsVec {
    counts: Vec<BoundedCount>,
}

impl ObsVec {
    /// Builds the observation vector from per-letter counts (indexed by
    /// letter index).
    pub fn new(counts: Vec<BoundedCount>) -> Self {
        ObsVec { counts }
    }

    /// Builds from exact per-letter counts, truncating each through `f_b`.
    pub fn from_counts(exact: &[usize], b: u8) -> Self {
        ObsVec {
            counts: exact.iter().map(|&x| crate::fb(x, b)).collect(),
        }
    }

    /// An all-zero observation vector over `sigma` letters.
    ///
    /// Intended as a reusable scratch buffer: allocate once per executor
    /// (or per worker thread) and [`ObsVec::refill_from_counts`] it for
    /// every node, instead of collecting a fresh `Vec` per observation.
    pub fn zeroed(sigma: usize) -> Self {
        ObsVec {
            counts: vec![BoundedCount::zero(); sigma],
        }
    }

    /// Overwrites this vector in place with `f_b` applied to exact
    /// per-letter counts, reusing the existing allocation.
    ///
    /// This is the zero-allocation companion of [`ObsVec::from_counts`]
    /// for engines that maintain incremental per-node letter counts: the
    /// whole phase-1 observation of a node becomes one O(|Σ|) refill of a
    /// shared scratch buffer.
    pub fn refill_from_counts(&mut self, exact: &[u32], b: u8) {
        self.counts.clear();
        self.counts.extend(
            exact
                .iter()
                .map(|&x| BoundedCount::from_count(x as usize, b)),
        );
    }

    /// Overwrites this vector in place from a *sparse* count map: the
    /// `(letter index, exact count)` pairs of the letters with non-zero
    /// counts, over an alphabet of `sigma` letters (every absent letter
    /// counts 0). The sparse companion of
    /// [`ObsVec::refill_from_counts`], used by engines that keep per-node
    /// counts sparsely when the compiled alphabet is large (e.g. the
    /// `3(σ+1)²` letters of a synchronized single-letter compilation).
    pub fn refill_from_sparse(&mut self, sigma: usize, nonzero: &[(u16, u32)], b: u8) {
        self.counts.clear();
        self.counts.resize(sigma, BoundedCount::zero());
        for &(letter, count) in nonzero {
            self.counts[letter as usize] = BoundedCount::from_count(count as usize, b);
        }
    }

    /// The truncated count of `letter`.
    pub fn get(&self, letter: Letter) -> BoundedCount {
        self.counts[letter.index()]
    }

    /// Number of letters covered.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The underlying per-letter counts.
    pub fn as_slice(&self) -> &[BoundedCount] {
        &self.counts
    }
}

/// A protocol using **multiple-letter queries**: transitions may depend on
/// the whole vector `⟨f_b(#σ)⟩_{σ∈Σ}`.
///
/// Theorem 3.4 (implemented by [`crate::SingleLetter`]) compiles any such
/// protocol down to a plain [`Fsm`] at constant overhead, so this layer is
/// a convenience, not extra power. The paper's own MIS and tree-coloring
/// protocols are stated in this layer.
pub trait MultiFsm: Protocol {
    /// The transition function over the full observation vector.
    fn delta(&self, q: &Self::State, obs: &ObsVec) -> Transitions<Self::State>;
}

/// Adapter viewing a single-letter [`Fsm`] as a [`MultiFsm`] that happens
/// to inspect only its query letter's entry.
///
/// Lets the (multi-letter-capable) synchronous engine run plain model
/// protocols without duplication.
#[derive(Clone, Debug)]
pub struct AsMulti<P>(pub P);

impl<P: Fsm> Protocol for AsMulti<P> {
    type State = P::State;

    fn alphabet(&self) -> &Alphabet {
        self.0.alphabet()
    }

    fn bound(&self) -> u8 {
        self.0.bound()
    }

    fn initial_letter(&self) -> Letter {
        self.0.initial_letter()
    }

    fn initial_state(&self, input: usize) -> Self::State {
        self.0.initial_state(input)
    }

    fn output(&self, q: &Self::State) -> Option<u64> {
        self.0.output(q)
    }
}

impl<P: Fsm> MultiFsm for AsMulti<P> {
    fn delta(&self, q: &Self::State, obs: &ObsVec) -> Transitions<Self::State> {
        self.0.delta(q, obs.get(self.0.query(q)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn det_transition_always_sampled() {
        let t: Transitions<u8> = Transitions::det(3, Some(Letter(1)));
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), &(3u8, Some(Letter(1))));
        }
    }

    #[test]
    fn uniform_sampling_hits_all_choices() {
        let t: Transitions<u8> = Transitions::uniform(vec![(0, None), (1, None), (2, None)]);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let (s, _) = t.sample(&mut rng);
            seen[*s as usize] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn uniform_sampling_is_roughly_uniform() {
        let t: Transitions<u8> = Transitions::uniform(vec![(0, None), (1, None)]);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut ones = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            if t.sample(&mut rng).0 == 1 {
                ones += 1;
            }
        }
        let frac = ones as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.03, "fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "at least one successor")]
    fn empty_uniform_panics() {
        let _: Transitions<u8> = Transitions::uniform(vec![]);
    }

    #[test]
    fn map_states_preserves_emissions() {
        let t: Transitions<u8> = Transitions::uniform(vec![(1, Some(Letter(0))), (2, None)]);
        let t2 = t.map_states(|s| s as u32 * 10);
        assert_eq!(t2.choices, vec![(10u32, Some(Letter(0))), (20u32, None)]);
    }

    #[test]
    fn obsvec_from_counts_truncates() {
        let o = ObsVec::from_counts(&[0, 1, 5], 2);
        assert_eq!(o.get(Letter(0)).raw(), 0);
        assert_eq!(o.get(Letter(1)).raw(), 1);
        assert_eq!(o.get(Letter(2)).raw(), 2);
        assert_eq!(o.len(), 3);
    }

    #[test]
    fn obsvec_refill_matches_from_counts() {
        let mut scratch = ObsVec::zeroed(3);
        assert_eq!(scratch.len(), 3);
        assert!(scratch.as_slice().iter().all(|c| c.is_zero()));
        for (exact, b) in [(vec![0u32, 1, 5], 2u8), (vec![7, 0, 2, 9], 3)] {
            scratch.refill_from_counts(&exact, b);
            let exact_usize: Vec<usize> = exact.iter().map(|&x| x as usize).collect();
            assert_eq!(scratch, ObsVec::from_counts(&exact_usize, b));
        }
    }
}
