//! Property-based tests for the protocol combinators: letter encoding
//! round-trips, pause/scan structure, and size accounting under randomly
//! sized inner protocols.

use proptest::prelude::*;

use stoneage_core::sync::{Scan, SyncState};
use stoneage_core::{
    fb, Alphabet, Fsm, Letter, Protocol, SingleLetter, Synchronized, TableProtocol,
    TableProtocolBuilder, Transitions,
};

/// A degenerate but well-formed single-letter protocol with `sigma`
/// letters, `b = bound`, that spins in its initial state.
fn spinner(sigma: usize, bound: u8) -> TableProtocol {
    let alphabet = Alphabet::anonymous(sigma);
    let mut b = TableProtocolBuilder::new("spinner", alphabet, bound, Letter(0));
    let s = b.add_state("s", Letter(0));
    b.add_input_state(s);
    b.set_transition_all(s, Transitions::det(s, None));
    b.build().unwrap()
}

proptest! {
    /// Compiled-message encoding is a bijection over
    /// (Σ∪{ε}) × (Σ∪{ε}) × {0,1,2} for every alphabet size.
    #[test]
    fn sync_message_codec_round_trips(sigma in 1usize..12, bound in 1u8..4) {
        let p = Synchronized::new(spinner(sigma, bound));
        let mut seen = std::collections::HashSet::new();
        let emissions: Vec<Option<Letter>> = (0..sigma as u16)
            .map(|i| Some(Letter(i)))
            .chain(std::iter::once(None))
            .collect();
        for &prev in &emissions {
            for &cur in &emissions {
                for trit in 0..3u8 {
                    let l = p.encode_message(prev, cur, trit);
                    prop_assert!(p.alphabet().contains(l));
                    prop_assert!(seen.insert(l), "duplicate letter {l:?}");
                    prop_assert_eq!(p.decode_message(l), (prev, cur, trit));
                }
            }
        }
        prop_assert_eq!(seen.len(), p.alphabet_size());
        prop_assert_eq!(p.alphabet_size(), 3 * (sigma + 1) * (sigma + 1));
    }

    /// The pausing feature walks exactly (|Σ|+1)² zero-observations before
    /// entering the simulating feature, regardless of alphabet size.
    #[test]
    fn pause_walk_length(sigma in 1usize..8, bound in 1u8..4) {
        let p = Synchronized::new(spinner(sigma, bound));
        let mut q = p.initial_state(0);
        let mut steps = 0usize;
        while q.is_pausing() {
            let t = p.delta(&q, fb(0, bound));
            prop_assert_eq!(t.choices.len(), 1);
            prop_assert_eq!(t.choices[0].1, None, "pausing never transmits");
            q = t.choices[0].0.clone();
            steps += 1;
            prop_assert!(steps <= (sigma + 1) * (sigma + 1) + 1);
        }
        prop_assert_eq!(steps, (sigma + 1) * (sigma + 1));
        let at_sim_start = matches!(
            q,
            SyncState::Sim { scan: Scan::Phi1, idx: 0, .. }
        );
        prop_assert!(at_sim_start);
    }

    /// A full quiet phase (all observations zero) takes exactly
    /// (|Σ|+1)² + 3(|Σ|+1) steps and ends with a compiled transmission.
    #[test]
    fn quiet_phase_length(sigma in 1usize..8, bound in 1u8..4) {
        let p = Synchronized::new(spinner(sigma, bound));
        let mut q = p.initial_state(0);
        let mut steps = 0usize;
        let emitted = loop {
            let t = p.delta(&q, fb(0, bound));
            q = t.choices[0].0.clone();
            steps += 1;
            if let Some(l) = t.choices[0].1 {
                break l;
            }
            prop_assert!(steps < 10_000);
        };
        prop_assert_eq!(steps, (sigma + 1) * (sigma + 1) + 3 * (sigma + 1));
        // The spinner emits ε, so the message is (σ₀, σ₀, 1): the retained
        // letter is carried through silent rounds.
        prop_assert_eq!(
            p.decode_message(emitted),
            (Some(Letter(0)), Some(Letter(0)), 1)
        );
        // And the node is pausing for round 2.
        let pausing_round_two = matches!(q, SyncState::Pause { trit: 2, check: 0, .. });
        prop_assert!(pausing_round_two);
    }

    /// SingleLetter gathers letters in index order and queries every
    /// letter exactly once per simulated round.
    #[test]
    fn single_letter_gather_order(sigma in 1usize..10, bound in 1u8..4) {
        use stoneage_core::{MultiFsm, ObsVec};

        /// Trivial multi protocol that outputs the sum of all counts.
        #[derive(Clone, Debug)]
        struct Summer(Alphabet, u8);
        impl stoneage_core::Protocol for Summer {
            type State = Option<u64>;
            fn alphabet(&self) -> &Alphabet { &self.0 }
            fn bound(&self) -> u8 { self.1 }
            fn initial_letter(&self) -> Letter { Letter(0) }
            fn initial_state(&self, _input: usize) -> Option<u64> { None }
            fn output(&self, q: &Option<u64>) -> Option<u64> { *q }
        }
        impl MultiFsm for Summer {
            fn delta(&self, q: &Option<u64>, obs: &ObsVec) -> Transitions<Option<u64>> {
                match q {
                    None => {
                        let sum: u64 =
                            obs.as_slice().iter().map(|c| c.raw() as u64).sum();
                        Transitions::det(Some(sum), None)
                    }
                    done => Transitions::det(*done, None),
                }
            }
        }

        let p = SingleLetter::new(Summer(Alphabet::anonymous(sigma), bound));
        let mut q = p.initial_state(0);
        for k in 0..sigma {
            prop_assert_eq!(p.query(&q), Letter(k as u16), "subround {}", k);
            // Feed count k (truncated by b) for letter k.
            let t = p.delta(&q, fb(k, bound));
            q = t.choices[0].0.clone();
        }
        let expected: u64 = (0..sigma).map(|k| k.min(bound as usize) as u64).sum();
        prop_assert_eq!(p.output(&q), Some(expected));
    }
}
