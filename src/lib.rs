//! **stoneage** — a complete Rust reproduction of *Stone Age Distributed
//! Computing* (Emek, Smula, Wattenhofer; PODC 2013 / arXiv:1202.1186).
//!
//! This facade re-exports the workspace crates under one roof:
//!
//! | module | contents |
//! |---|---|
//! | [`core`] | the nFSM model: protocols, `f_b` counting, the synchronizer (Thm 3.1) and multi-letter compiler (Thm 3.4) |
//! | [`sim`] | asynchronous (adversarial) and synchronous executors, plus the port-select extension engine |
//! | [`protocols`] | the paper's MIS (Fig. 1), tree 3-coloring, wave, and maximal matching |
//! | [`lba`] | Section 6: rLBAs, Lemma 6.1 sweep simulation, Lemma 6.2 path compilation |
//! | [`graph`] | graph substrate: generators, traversals, validators |
//! | [`baselines`] | Luby/ABI/Métivier/beeping MIS, Cole–Vishkin coloring, message-passing matching |
//!
//! # Quickstart
//!
//! ```
//! use stoneage::protocols::{decode_mis, MisProtocol};
//! use stoneage::sim::Simulation;
//! use stoneage::graph::{generators, validate};
//!
//! let g = generators::gnp(200, 0.05, 42);
//! let out = Simulation::sync(&MisProtocol::new(), &g).seed(7).run().unwrap();
//! let mis = decode_mis(&out.outputs);
//! assert!(validate::is_maximal_independent_set(&g, &mis));
//! println!(
//!     "MIS of {} nodes in {} rounds",
//!     mis.iter().filter(|&&x| x).count(),
//!     out.rounds().unwrap()
//! );
//! ```
//!
//! For the full asynchronous pipeline (the paper's actual model), compile
//! a protocol through [`core::SingleLetter`] and [`core::Synchronized`]
//! and run it with [`sim::Simulation::asynchronous`] under any
//! [`sim::adversary`] policy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use stoneage_baselines as baselines;
pub use stoneage_core as core;
pub use stoneage_graph as graph;
pub use stoneage_lba as lba;
pub use stoneage_protocols as protocols;
pub use stoneage_sim as sim;
