//! Smoke tests for the experiment harness: every experiment must run at
//! quick scale and produce a well-formed table (the experiments contain
//! their own internal assertions — validity of every protocol output,
//! bit-exactness of the simulations — so running them *is* a test).

use stoneage_bench::experiments::{self, Scale};

#[test]
fn figure1_and_fast_experiments() {
    for name in ["fig1", "multiq", "lba-sim", "lba-to-nfsm"] {
        let t = experiments::by_name(name, Scale::Quick)
            .unwrap_or_else(|| panic!("unknown experiment {name}"));
        assert!(!t.rows.is_empty(), "{name} produced no rows");
        assert!(!t.render().is_empty());
        assert!(t.to_json()["rows"].is_array());
    }
}

#[test]
fn scaling_experiments_quick() {
    for name in ["edge-decay", "tournaments", "good-nodes"] {
        let t = experiments::by_name(name, Scale::Quick).unwrap();
        assert!(!t.rows.is_empty(), "{name}");
    }
}

#[test]
fn synchronizer_and_adversary_experiments_quick() {
    for name in ["synchronizer", "adversary"] {
        let t = experiments::by_name(name, Scale::Quick).unwrap();
        assert!(!t.rows.is_empty(), "{name}");
    }
}

#[test]
fn unknown_experiment_is_none() {
    assert!(experiments::by_name("not-an-experiment", Scale::Quick).is_none());
}
