//! Cross-crate property-based tests: protocol correctness over randomized
//! graphs, seeds and adversaries.

use proptest::prelude::*;

use stoneage::graph::{generators, validate};
use stoneage::protocols::{
    decode_coloring, decode_mis, run_matching, ColoringProtocol, MisProtocol,
};
use stoneage::sim::Simulation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 4.5's correctness half: every output configuration is an
    /// MIS, for arbitrary (n, p, graph seed, protocol seed).
    #[test]
    fn mis_always_valid(
        n in 1usize..60,
        p in 0.0f64..0.4,
        gseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = generators::gnp(n, p, gseed);
        let out = Simulation::sync(&MisProtocol::new(), &g)
            .seed(seed)
            .budget(1_000_000)
            .run()
            .expect("MIS terminates");
        prop_assert!(validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs)));
    }

    /// Theorem 5.4's correctness half on uniformly random trees.
    #[test]
    fn coloring_always_valid(
        n in 1usize..80,
        gseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = generators::random_tree(n, gseed);
        let out = Simulation::sync(&ColoringProtocol::new(), &g)
            .seed(seed)
            .budget(1_000_000)
            .run()
            .expect("coloring terminates");
        prop_assert!(validate::is_proper_k_coloring(&g, &decode_coloring(&out.outputs), 3));
    }

    /// The matching extension always yields a maximal matching, with
    /// outputs consistent with the recovered edges.
    #[test]
    fn matching_always_valid(
        n in 1usize..50,
        p in 0.0f64..0.4,
        gseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = generators::gnp(n, p, gseed);
        let out = run_matching(&g, seed, 1_000_000).expect("matching terminates");
        prop_assert!(validate::is_maximal_matching(&g, &out.matched));
        let mut touched = vec![false; n];
        for &(a, b) in &out.matched {
            touched[a as usize] = true;
            touched[b as usize] = true;
        }
        for (v, &t) in touched.iter().enumerate() {
            prop_assert_eq!(out.outputs[v] == 1, t);
        }
    }

    /// Determinism: identical seeds reproduce identical executions.
    #[test]
    fn executions_are_reproducible(
        n in 2usize..40,
        gseed in 0u64..1000,
        seed in 0u64..1000,
    ) {
        let g = generators::gnp(n, 0.15, gseed);
        let a = Simulation::sync(&MisProtocol::new(), &g).seed(seed).run().unwrap();
        let b = Simulation::sync(&MisProtocol::new(), &g).seed(seed).run().unwrap();
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.rounds(), b.rounds());
    }

    /// Graph substrate invariant feeding everything else: uniformly random
    /// trees are trees, and Observation 5.2's good-node bound holds.
    #[test]
    fn random_trees_are_trees_with_good_nodes(n in 1usize..200, gseed in 0u64..1000) {
        let g = generators::random_tree(n, gseed);
        prop_assert!(stoneage::graph::traversal::is_tree(&g));
        prop_assert!(5 * validate::count_good_tree_nodes(&g) >= n);
    }
}
