//! End-to-end pipeline tests spanning every crate: protocol → Theorem 3.4
//! compiler → Theorem 3.1 synchronizer → asynchronous adversarial engine,
//! with outputs validated by the independent graph validators.

use stoneage::core::{AsMulti, SingleLetter, Synchronized};
use stoneage::graph::{generators, traversal, validate};
use stoneage::protocols::{
    decode_mis,
    wave::{wave_inputs, wave_protocol},
    MisProtocol,
};
use stoneage::sim::adversary::{standard_panel, Exponential, UniformRandom};
use stoneage::sim::Simulation;

#[test]
fn mis_full_pipeline_is_correct_under_all_adversaries() {
    let g = generators::gnp(24, 0.12, 3);
    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    for (i, adv) in standard_panel(5).iter().enumerate() {
        let out = Simulation::asynchronous(&pipeline, &g, adv)
            .seed(40 + i as u64)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", adv.name()));
        assert!(
            validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs)),
            "adversary {}",
            adv.name()
        );
    }
}

#[test]
fn mis_pipeline_on_structured_graphs() {
    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    let adv = UniformRandom { seed: 77 };
    for (name, g) in [
        ("path", generators::path(16)),
        ("star", generators::star(12)),
        ("cycle", generators::cycle(15)),
        ("complete", generators::complete(8)),
        ("tree", generators::random_tree(18, 2)),
    ] {
        let out = Simulation::asynchronous(&pipeline, &g, &adv)
            .seed(1)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            validate::is_maximal_independent_set(&g, &decode_mis(&out.outputs)),
            "{name}"
        );
    }
}

#[test]
fn single_letter_compilation_is_exact_on_mis() {
    // Theorem 3.4 at integration level: identical outputs, ×|Σ| rounds.
    for seed in 0..6 {
        let g = generators::gnp(40, 0.1, seed);
        let direct = Simulation::sync(&MisProtocol::new(), &g)
            .seed(seed)
            .run()
            .unwrap();
        let compiled = Simulation::sync(&AsMulti(SingleLetter::new(MisProtocol::new())), &g)
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(direct.outputs, compiled.outputs, "seed {seed}");
        assert_eq!(
            compiled.rounds().unwrap(),
            direct.rounds().unwrap() * 7,
            "seed {seed}"
        );
    }
}

#[test]
fn synchronized_wave_covers_every_connected_graph() {
    let wave = Synchronized::new(wave_protocol());
    for (g, src) in [
        (generators::path(20), 5u32),
        (generators::random_tree(25, 9), 0),
        (generators::grid(4, 6), 3),
        (generators::cycle(12), 0),
    ] {
        assert!(traversal::is_connected(&g));
        let inputs = wave_inputs(g.node_count(), &[src]);
        let adv = Exponential { seed: 4, mean: 0.4 };
        let out = Simulation::asynchronous(&wave, &g, &adv)
            .seed(6)
            .inputs(&inputs)
            .run()
            .unwrap();
        assert!(out.outputs.iter().all(|&o| o == 1));
        assert!(out.cost.value() > 0.0);
    }
}

#[test]
fn synchronizer_overhead_is_constant_per_round() {
    // Theorem 3.1's quantitative content: async time units per simulated
    // round do not grow with n (under a fixed adversary).
    let wave = Synchronized::new(wave_protocol());
    let adv = UniformRandom { seed: 10 };
    let mut per_round = Vec::new();
    for n in [16usize, 32, 64, 128] {
        let g = generators::path(n);
        let inputs = wave_inputs(n, &[0]);
        let sync = Simulation::sync(&AsMulti(wave_protocol()), &g)
            .inputs(&inputs)
            .run()
            .unwrap();
        let asy = Simulation::asynchronous(&wave, &g, &adv)
            .seed(2)
            .inputs(&inputs)
            .run()
            .unwrap();
        per_round.push(asy.cost.value() / sync.rounds().unwrap() as f64);
    }
    let min = per_round.iter().copied().fold(f64::MAX, f64::min);
    let max = per_round.iter().copied().fold(0.0f64, f64::max);
    assert!(
        max < 3.0 * min,
        "overhead per round should be flat across n: {per_round:?}"
    );
}

#[test]
fn facade_reexports_compose() {
    // The README quickstart, as a test.
    let g = stoneage::graph::generators::gnp(200, 0.05, 42);
    let out = stoneage::sim::Simulation::sync(&stoneage::protocols::MisProtocol::new(), &g)
        .seed(7)
        .run()
        .unwrap();
    let mis = stoneage::protocols::decode_mis(&out.outputs);
    assert!(stoneage::graph::validate::is_maximal_independent_set(
        &g, &mis
    ));
}
