//! Integration tests for the Section 6 computational-power equivalences,
//! run across crates: rLBA ⟷ nFSM in both directions.

use stoneage::graph::generators;
use stoneage::lba::machines::{self, encode_abc};
use stoneage::lba::{sweep, to_nfsm};
use stoneage::protocols::{ColoringProtocol, MisProtocol, MisState};
use stoneage::sim::Simulation;

#[test]
fn lemma_61_sweep_equals_native_for_mis() {
    for seed in 0..4 {
        let g = generators::gnp(30, 0.12, seed);
        let native = Simulation::sync(&MisProtocol::new(), &g)
            .seed(seed)
            .run()
            .unwrap();
        let sweep = sweep::simulate_on_tape(
            &MisProtocol::new(),
            &g,
            &vec![0usize; g.node_count()],
            seed,
            1_000_000,
            |s| *s as u64,
            |c| MisState::ALL[c as usize],
        )
        .unwrap();
        assert_eq!(sweep.outputs, native.outputs);
        assert_eq!(Some(sweep.rounds), native.rounds());
        assert_eq!(sweep.tape_cells, 3 * g.node_count() + 4 * g.edge_count());
    }
}

#[test]
fn lemma_61_handles_structured_state_protocols() {
    // The coloring protocol's states are structured (bitmask snapshots);
    // a codec through a dense enumeration is impractical, so we check the
    // simulator with the wave protocol (u16 states) on varied graphs and
    // the coloring protocol indirectly through MIS-style membership:
    // the tape machinery itself is protocol-generic.
    use stoneage::core::AsMulti;
    use stoneage::protocols::wave::{wave_inputs, wave_protocol};
    for (g, src) in [
        (generators::random_tree(25, 1), 4u32),
        (generators::grid(5, 5), 0),
    ] {
        let inputs = wave_inputs(g.node_count(), &[src]);
        let p = AsMulti(wave_protocol());
        let native = Simulation::sync(&p, &g)
            .seed(2)
            .inputs(&inputs)
            .run()
            .unwrap();
        let sweep =
            sweep::simulate_on_tape(&p, &g, &inputs, 2, 100_000, |s| *s as u64, |c| c as u16)
                .unwrap();
        assert_eq!(sweep.outputs, native.outputs);
        assert_eq!(Some(sweep.rounds), native.rounds());
    }
}

#[test]
fn lemma_62_language_equality_abc() {
    let m = machines::abc_equal();
    // Every word over {a,b,c} up to length 6: the path protocol decides
    // the same language as the direct machine.
    fn words(len: usize) -> Vec<String> {
        if len == 0 {
            return vec![String::new()];
        }
        words(len - 1)
            .into_iter()
            .flat_map(|w| ["a", "b", "c"].iter().map(move |c| format!("{w}{c}")))
            .collect()
    }
    for len in 0..=5 {
        for w in words(len) {
            let input = encode_abc(&w);
            let direct = m.run(&input, 0, 1_000_000).unwrap().accepted;
            let (path, _) = to_nfsm::run_on_path(&m, &input, 3, 1_000_000).unwrap();
            assert_eq!(direct, path, "{w:?}");
        }
    }
}

#[test]
fn lemma_62_randomized_machine_many_seeds() {
    let m = machines::random_walk_contains_b();
    for seed in 0..8 {
        for (w, expect) in [("aaab", true), ("aaaa", false), ("", false), ("b", true)] {
            let (verdict, _) = to_nfsm::run_on_path(&m, &encode_abc(w), seed, 10_000_000).unwrap();
            assert_eq!(verdict, expect, "{w:?} seed {seed}");
        }
    }
}

#[test]
fn coloring_protocol_survives_large_instances() {
    // A bigger end-to-end check than the unit tests: 20k-node trees.
    for seed in 0..2 {
        let g = generators::random_tree(20_000, seed);
        let out = Simulation::sync(&ColoringProtocol::new(), &g)
            .seed(seed)
            .budget(1_000_000)
            .run()
            .unwrap();
        let colors = stoneage::protocols::decode_coloring(&out.outputs);
        assert!(stoneage::graph::validate::is_proper_k_coloring(
            &g, &colors, 3
        ));
        let rounds = out.rounds().unwrap();
        assert!(
            rounds < 60 * 15,
            "O(log n): got {rounds} rounds for n = 20000"
        );
    }
}
