//! Empirical validation of the synchronizer's internal invariants —
//! Lemma 3.2 / synchronization property (S1) — plus the asynchronous
//! engine's per-edge FIFO guarantee.

use stoneage::core::sync::SyncState;
use stoneage::core::{Protocol, SingleLetter, Synchronized};
use stoneage::graph::{generators, Graph, NodeId};
use stoneage::protocols::MisProtocol;
use stoneage::sim::adversary::{Exponential, SlowNodes, UniformRandom};
use stoneage::sim::{AdaptAsync, Adversary, AsyncObserver, Simulation};

/// Tracks, per node, the number of *completed simulation phases* (a phase
/// completes exactly when the node's state returns to `Pause { check: 0 }`
/// for the next round), and asserts property (S1): at every instant, the
/// phase counts of adjacent nodes differ by at most 1.
struct SkewWatch<'g, S> {
    graph: &'g Graph,
    phases: Vec<u64>,
    in_pause_zero: Vec<bool>,
    max_skew: u64,
    _marker: std::marker::PhantomData<S>,
}

impl<'g, S> SkewWatch<'g, S> {
    fn new(graph: &'g Graph) -> Self {
        SkewWatch {
            graph,
            phases: vec![0; graph.node_count()],
            in_pause_zero: vec![true; graph.node_count()],
            max_skew: 0,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<S: Clone + Eq + std::fmt::Debug> AsyncObserver<SyncState<S>> for SkewWatch<'_, S> {
    fn on_step(&mut self, _time: f64, v: NodeId, _t: u64, state: &SyncState<S>) {
        let vi = v as usize;
        let at_phase_start = matches!(state, SyncState::Pause { check: 0, .. });
        // Count a completed phase on the transition *into* Pause{check:0}
        // (which happens exactly once per simulated round, at the final
        // Phi3 step).
        if at_phase_start && !self.in_pause_zero[vi] {
            self.phases[vi] += 1;
            for &u in self.graph.neighbors(v) {
                let diff = self.phases[vi].abs_diff(self.phases[u as usize]);
                self.max_skew = self.max_skew.max(diff);
                assert!(
                    diff <= 1,
                    "(S1) violated: node {v} at phase {} vs neighbor {u} at {}",
                    self.phases[vi],
                    self.phases[u as usize]
                );
            }
        }
        self.in_pause_zero[vi] = at_phase_start;
    }
}

fn check_s1<A: Adversary>(g: &Graph, adv: &A, seed: u64) {
    let pipeline = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    let inputs = vec![0usize; g.node_count()];
    let mut watch = AdaptAsync(SkewWatch::new(g));
    Simulation::asynchronous(&pipeline, g, adv)
        .seed(seed)
        .inputs(&inputs)
        .observe(&mut watch)
        .run()
        .expect("pipeline terminates");
    // The watch must actually have seen progress.
    assert!(watch.0.phases.iter().any(|&p| p > 2), "no phases observed");
}

#[test]
fn property_s1_holds_under_uniform_adversary() {
    let g = generators::gnp(16, 0.2, 4);
    check_s1(&g, &UniformRandom { seed: 3 }, 1);
}

#[test]
fn property_s1_holds_under_heavy_tail_adversary() {
    let g = generators::cycle(12);
    check_s1(&g, &Exponential { seed: 5, mean: 0.5 }, 2);
}

#[test]
fn property_s1_holds_with_stragglers() {
    // A 20× straggler forces maximal skew pressure; (S1) must still hold.
    let g = generators::path(10);
    check_s1(
        &g,
        &SlowNodes {
            seed: 7,
            fraction: 0.3,
            factor: 20.0,
        },
        3,
    );
}

/// FIFO: an adversary that gives *later* transmissions *shorter* delays
/// must not let them overtake earlier ones on the same edge.
#[test]
fn fifo_clamp_prevents_overtaking() {
    use stoneage::core::{Alphabet, Letter, TableProtocolBuilder, Transitions};

    // Sender emits A, B, C on its first three steps, then sleeps forever
    // in an output state; receiver waits long, then records f₁(#C): with
    // FIFO, C (sent last) is the final port content even though the
    // adversary gave it the shortest delay.
    let alphabet = Alphabet::new(["A", "B", "C", "Z"]);
    let (a, bb, c, z) = (Letter(0), Letter(1), Letter(2), Letter(3));
    let mut b = TableProtocolBuilder::new("fifo-probe", alphabet, 1, z);
    // Sender chain.
    let s1 = b.add_state("s1", c);
    let s2 = b.add_state("s2", c);
    let s3 = b.add_state("s3", c);
    let sdone = b.add_output_state("sdone", c, 7);
    b.set_transition_all(s1, Transitions::det(s2, Some(a)));
    b.set_transition_all(s2, Transitions::det(s3, Some(bb)));
    b.set_transition_all(s3, Transitions::det(sdone, Some(c)));
    b.set_transition_all(sdone, Transitions::det(sdone, None));
    // Receiver: wait several steps, then output 100 + f₁(#C).
    let mut waits = Vec::new();
    for i in 0..8 {
        waits.push(b.add_state(format!("w{i}"), c));
    }
    let r0 = b.add_output_state("saw_nothing", c, 100);
    let r1 = b.add_output_state("saw_c", c, 101);
    for i in 0..7 {
        b.set_transition_all(waits[i], Transitions::det(waits[i + 1], None));
    }
    b.set_transition(waits[7], 0, Transitions::det(r0, None));
    b.set_transition(waits[7], 1, Transitions::det(r1, None));
    b.set_transition_all(r0, Transitions::det(r0, None));
    b.set_transition_all(r1, Transitions::det(r1, None));
    b.add_input_state(s1); // input 0 = sender
    b.add_input_state(waits[0]); // input 1 = receiver
    let protocol = b.build().unwrap();

    /// Delays shrink drastically with the step index: without the FIFO
    /// clamp, A (delay 9) would arrive after C (delay 0.01) and win the
    /// port.
    struct ShrinkingDelays;
    impl Adversary for ShrinkingDelays {
        fn step_length(&self, v: NodeId, _t: u64) -> f64 {
            if v == 0 {
                0.1 // fast sender
            } else {
                2.0 // slow receiver
            }
        }
        fn delay(&self, _v: NodeId, t: u64, _u: NodeId) -> f64 {
            match t {
                1 => 9.0,
                2 => 1.0,
                _ => 0.01,
            }
        }
        fn name(&self) -> &'static str {
            "shrinking"
        }
    }

    let g = generators::path(2);
    let out = Simulation::asynchronous(&protocol, &g, &ShrinkingDelays)
        .inputs(&[0, 1])
        .run()
        .unwrap();
    // Receiver (node 1) must have seen C as the final port value.
    assert_eq!(out.outputs[1], 101, "FIFO order was violated");
}

/// The synchronizer's state-space accounting stays constant as graphs
/// grow (requirement (M4) for the compiled protocol).
#[test]
fn compiled_protocol_size_is_network_independent() {
    let p = Synchronized::new(SingleLetter::new(MisProtocol::new()));
    let alpha = p.alphabet_size();
    let per_state = p.states_per_inner_state();
    // Nothing about these depends on any graph; spot-check the values.
    assert_eq!(alpha, 3 * 8 * 8);
    assert!(per_state > 0);
    assert_eq!(Protocol::alphabet(&p).len(), alpha);
}
